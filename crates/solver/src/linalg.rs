//! Dense linear algebra: just enough to run a Newton interior-point method.
//!
//! Matrices are small in LIBRA problems (a handful of bandwidth variables
//! plus epigraph variables), so everything here is dense, row-major, and
//! allocation-friendly rather than tuned for large sizes.

use crate::error::SolverError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row length");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = dot(row, x);
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    pub fn mul_vec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            for (o, r) in out.iter_mut().zip(row) {
                *o += xi * r;
            }
        }
        out
    }

    /// Adds `alpha · v vᵀ` to the matrix (rank-1 symmetric update).
    ///
    /// # Panics
    /// Panics unless the matrix is square with size `v.len()`.
    pub fn rank1_update(&mut self, alpha: f64, v: &[f64]) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(v.len(), self.rows);
        for i in 0..self.rows {
            if v[i] == 0.0 {
                continue;
            }
            let vi = alpha * v[i];
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (r, vj) in row.iter_mut().zip(v) {
                *r += vi * vj;
            }
        }
    }

    /// Adds `delta` to every diagonal entry (Tikhonov regularization).
    pub fn add_diagonal(&mut self, delta: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += delta;
        }
    }

    /// Solves `self · x = b` via LU with partial pivoting. The matrix is
    /// consumed conceptually (a working copy is factored).
    ///
    /// # Errors
    /// Returns [`SolverError::NumericalFailure`] if the matrix is singular to
    /// working precision.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k.
            let mut p = k;
            let mut max = a[perm[k] * n + k].abs();
            for (r, &pr) in perm.iter().enumerate().skip(k + 1) {
                let v = a[pr * n + k].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < 1e-300 {
                return Err(SolverError::NumericalFailure("singular matrix in LU solve"));
            }
            perm.swap(k, p);
            let pk = perm[k];
            let pivot = a[pk * n + k];
            for &pr in perm.iter().skip(k + 1) {
                let factor = a[pr * n + k] / pivot;
                a[pr * n + k] = factor;
                for j in k + 1..n {
                    a[pr * n + j] -= factor * a[pk * n + j];
                }
            }
        }

        // Forward substitution (L has implicit unit diagonal).
        let mut y = vec![0.0; n];
        for (k, &pk) in perm.iter().enumerate() {
            let mut s = x[pk];
            for (j, yj) in y.iter().enumerate().take(k) {
                s -= a[pk * n + j] * yj;
            }
            y[k] = s;
        }
        // Back substitution.
        for k in (0..n).rev() {
            let pk = perm[k];
            let mut s = y[k];
            for j in k + 1..n {
                s -= a[pk * n + j] * x[j];
            }
            x[k] = s / a[pk * n + k];
        }
        Ok(x)
    }

    /// Cholesky factorization `self = L·Lᵀ` for a symmetric positive-definite
    /// matrix; returns the lower factor.
    ///
    /// # Errors
    /// Returns [`SolverError::NumericalFailure`] if the matrix is not
    /// (numerically) positive definite.
    pub fn cholesky(&self) -> Result<Matrix, SolverError> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SolverError::NumericalFailure(
                            "matrix not positive definite in Cholesky",
                        ));
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` using a pre-computed Cholesky factor of `self`.
    pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
        let n = l.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                s -= l[(i, j)] * yj;
            }
            y[i] = s / l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= l[(j, i)] * y[j];
            }
            y[i] = s / l[(i, i)];
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_small_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn lu_handles_permutation() {
        // Requires pivoting: zero on the diagonal.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = a.cholesky().unwrap();
        let x = Matrix::cholesky_solve(&l, &[1.0, 2.0, 3.0]);
        let b = a.mul_vec(&x);
        assert!((b[0] - 1.0).abs() < 1e-10);
        assert!((b[1] - 2.0).abs() < 1e-10);
        assert!((b[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn rank1_update_matches_manual() {
        let mut a = Matrix::zeros(2, 2);
        a.rank1_update(2.0, &[1.0, 3.0]);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 6.0);
        assert_eq!(a[(1, 0)], 6.0);
        assert_eq!(a[(1, 1)], 18.0);
    }

    #[test]
    fn mul_vec_t_is_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec_t(&[1.0, 1.0]);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }
}
