//! Log-barrier interior-point solver with equality elimination and phase-I.
//!
//! Pipeline (Boyd & Vandenberghe, ch. 10–11):
//! 1. **Equality elimination** — `A x = b` is removed by Gaussian
//!    elimination, substituting `x = x_p + N z` so ratio terms become
//!    `c / (βᵀz + α)` (still convex on the positive side of the denominator).
//! 2. **Phase-I** — minimize a slack `s` with all constraints relaxed to
//!    `g_i(z) ≤ s`; stops as soon as a strictly feasible point is found.
//! 3. **Barrier loop** — minimize `t·f₀(z) − Σ log(−g_i(z))` by damped
//!    Newton, increasing `t` geometrically until the duality gap `m/t` is
//!    below tolerance.

use crate::convex::{ConvexProblem, Solution};
use crate::error::SolverError;
use crate::linalg::{dot, norm2, Matrix};

/// Optional per-iterate early-exit predicate threaded through the solver.
type EarlyStop<'a> = Option<&'a dyn Fn(&[f64]) -> bool>;

/// Hard iteration caps; generous for the tiny problems LIBRA produces.
const MAX_NEWTON_PER_STAGE: usize = 200;
const MAX_BARRIER_STAGES: usize = 64;
const T_MU: f64 = 20.0;
const GAP_TOL: f64 = 1e-10;
const UNBOUNDED_NORM: f64 = 1e14;

/// Presumed relative suboptimality of a warm-start seed: a warm solve
/// enters the barrier ladder at `t ≈ m / (WARM_GAP · scale)` instead of
/// `t ≈ 1`, skipping the centering stages a cold solve spends crossing the
/// gap the seed has already closed. Sweep seeds are rescaled neighboring
/// optima — for LIBRA's ratio objectives the rescaling is nearly exact, so
/// the trust is deep; a seed that is actually worse only costs extra
/// damped-Newton steps in the first stage, never correctness (the stopping
/// criterion is unchanged, and divergence falls back to more stages).
const WARM_GAP: f64 = 1e-3;

/// An affine expression `βᵀz + α` over reduced variables.
#[derive(Debug, Clone, Default)]
struct Affine {
    terms: Vec<(usize, f64)>,
    constant: f64,
}

impl Affine {
    fn constant(c: f64) -> Self {
        Affine { terms: Vec::new(), constant: c }
    }

    fn var(i: usize) -> Self {
        Affine { terms: vec![(i, 1.0)], constant: 0.0 }
    }

    fn eval(&self, z: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(i, a)| a * z[i]).sum::<f64>()
    }

    fn add_scaled(&mut self, other: &Affine, scale: f64) {
        self.constant += scale * other.constant;
        for &(i, a) in &other.terms {
            self.terms.push((i, scale * a));
        }
    }

    fn compact(&mut self) {
        self.terms.sort_unstable_by_key(|&(i, _)| i);
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.terms.len());
        for &(i, a) in &self.terms {
            match out.last_mut() {
                Some((j, acc)) if *j == i => *acc += a,
                _ => out.push((i, a)),
            }
        }
        out.retain(|&(_, a)| a != 0.0);
        self.terms = out;
    }
}

/// A generalized convex constraint `Σ c_r / den_r(z) + linear(z) ≤ 0` where
/// every denominator is affine.
#[derive(Debug, Clone, Default)]
struct GenCon {
    ratios: Vec<(f64, Affine)>,
    affine: Affine,
}

impl GenCon {
    /// Evaluates the constraint; `+inf` when any denominator is non-positive
    /// (outside the convex domain).
    fn eval(&self, z: &[f64]) -> f64 {
        let mut v = self.affine.eval(z);
        for (c, den) in &self.ratios {
            let d = den.eval(z);
            if d <= 0.0 {
                return f64::INFINITY;
            }
            v += c / d;
        }
        v
    }

    fn add_grad(&self, z: &[f64], scale: f64, grad: &mut [f64]) {
        for &(i, a) in &self.affine.terms {
            grad[i] += scale * a;
        }
        for (c, den) in &self.ratios {
            let d = den.eval(z);
            let k = -scale * c / (d * d);
            for &(i, b) in &den.terms {
                grad[i] += k * b;
            }
        }
    }

    fn grad(&self, z: &[f64], n: usize) -> Vec<f64> {
        let mut g = vec![0.0; n];
        self.add_grad(z, 1.0, &mut g);
        g
    }

    /// Adds `scale · ∇²g(z)` into `h` (each ratio contributes
    /// `2c/d³ · ββᵀ`).
    fn add_hess(&self, z: &[f64], scale: f64, h: &mut Matrix, scratch: &mut Vec<f64>) {
        for (c, den) in &self.ratios {
            let d = den.eval(z);
            let k = scale * 2.0 * c / (d * d * d);
            if k == 0.0 {
                continue;
            }
            scratch.clear();
            scratch.resize(h.rows(), 0.0);
            for &(i, b) in &den.terms {
                scratch[i] = b;
            }
            h.rank1_update(k, scratch);
        }
    }
}

/// The problem after equality elimination: minimize `cᵀz` subject to
/// `g_i(z) ≤ 0` (the objective's constant offset is dropped — it does not
/// move the optimum, and the reported objective is recomputed in the
/// original variables).
#[derive(Debug, Clone)]
struct Nlp {
    n: usize,
    objective: Vec<f64>,
    cons: Vec<GenCon>,
}

/// Substitution map `x = x_p + N z` produced by equality elimination.
#[derive(Debug, Clone)]
struct Substitution {
    /// Per original variable, its affine expression in `z`.
    exprs: Vec<Affine>,
    /// Number of reduced variables.
    n_reduced: usize,
}

impl Substitution {
    fn identity(n: usize) -> Self {
        Substitution { exprs: (0..n).map(Affine::var).collect(), n_reduced: n }
    }

    fn map_linear(&self, terms: &[(usize, f64)], constant: f64) -> Affine {
        let mut a = Affine::constant(constant);
        for &(i, c) in terms {
            a.add_scaled(&self.exprs[i], c);
        }
        a.compact();
        a
    }

    fn recover(&self, z: &[f64]) -> Vec<f64> {
        self.exprs.iter().map(|e| e.eval(z)).collect()
    }
}

/// Eliminates `A x = b` by Gauss–Jordan, returning the substitution map.
///
/// # Errors
/// Returns [`SolverError::Infeasible`] if the equalities are inconsistent.
fn eliminate_equalities(
    n: usize,
    eqs: &[(Vec<(usize, f64)>, f64)],
) -> Result<Substitution, SolverError> {
    if eqs.is_empty() {
        return Ok(Substitution::identity(n));
    }
    let m = eqs.len();
    // Dense augmented matrix [A | b].
    let mut a = vec![vec![0.0f64; n + 1]; m];
    for (r, (terms, rhs)) in eqs.iter().enumerate() {
        for &(i, c) in terms {
            a[r][i] += c;
        }
        a[r][n] = *rhs;
    }
    let mut pivot_of_row: Vec<Option<usize>> = vec![None; m];
    let mut is_pivot_col = vec![false; n];
    let mut rank = 0usize;
    for col in 0..n {
        // Find the best pivot row at or below `rank`.
        let mut best = rank;
        let mut best_val = 0.0f64;
        for (r, row) in a.iter().enumerate().take(m).skip(rank) {
            if row[col].abs() > best_val {
                best_val = row[col].abs();
                best = r;
            }
        }
        if best_val < 1e-10 {
            continue;
        }
        a.swap(rank, best);
        let piv = a[rank][col];
        for v in a[rank].iter_mut() {
            *v /= piv;
        }
        let (before, rest) = a.split_at_mut(rank);
        let (pivot_row, after) = rest.split_first_mut().expect("rank < m");
        for row in before.iter_mut().chain(after.iter_mut().take(m - rank - 1)) {
            let f = row[col];
            if f.abs() > 0.0 {
                for (v, p) in row.iter_mut().zip(pivot_row.iter()) {
                    *v -= p * f;
                }
            }
        }
        pivot_of_row[rank] = Some(col);
        is_pivot_col[col] = true;
        rank += 1;
        if rank == m {
            break;
        }
    }
    // Inconsistency check on zero rows.
    for row in a.iter().take(m).skip(rank) {
        if row[n].abs() > 1e-8 {
            return Err(SolverError::Infeasible);
        }
    }
    // Free columns become the reduced variables.
    let free_cols: Vec<usize> = (0..n).filter(|&c| !is_pivot_col[c]).collect();
    let z_index: std::collections::HashMap<usize, usize> =
        free_cols.iter().enumerate().map(|(zi, &c)| (c, zi)).collect();
    let mut exprs: Vec<Affine> = (0..n)
        .map(|c| z_index.get(&c).map_or_else(Affine::default, |&zi| Affine::var(zi)))
        .collect();
    for r in 0..rank {
        let pc = pivot_of_row[r].expect("pivot recorded for every reduced row");
        let mut e = Affine::constant(a[r][n]);
        for &fc in &free_cols {
            if a[r][fc] != 0.0 {
                e.terms.push((z_index[&fc], -a[r][fc]));
            }
        }
        exprs[pc] = e;
    }
    Ok(Substitution { exprs, n_reduced: free_cols.len() })
}

/// Lowers a [`ConvexProblem`] into the reduced NLP plus substitution map.
fn lower(p: &ConvexProblem) -> Result<(Nlp, Substitution), SolverError> {
    let n = p.n_vars();
    let (ratio_cons, lin_ineq, lin_eq, lower_b, upper_b) = p.parts();
    let eqs: Vec<(Vec<(usize, f64)>, f64)> =
        lin_eq.iter().map(|lc| (lc.terms.clone(), lc.rhs)).collect();
    let sub = eliminate_equalities(n, &eqs)?;

    let mut cons: Vec<GenCon> = Vec::new();
    for rc in ratio_cons {
        let mut gc =
            GenCon { ratios: Vec::new(), affine: sub.map_linear(rc.linear(), rc.constant()) };
        for &(i, c) in rc.ratios() {
            if c == 0.0 {
                continue;
            }
            gc.ratios.push((c, sub.exprs[i].clone()));
        }
        cons.push(gc);
    }
    for lc in lin_ineq {
        cons.push(GenCon { ratios: Vec::new(), affine: sub.map_linear(&lc.terms, -lc.rhs) });
    }
    for i in 0..n {
        if let Some(l) = lower_b[i] {
            // l − x_i ≤ 0
            let mut a = Affine::constant(l);
            a.add_scaled(&sub.exprs[i], -1.0);
            a.compact();
            cons.push(GenCon { ratios: Vec::new(), affine: a });
        }
        if let Some(u) = upper_b[i] {
            // x_i − u ≤ 0
            let mut a = Affine::constant(-u);
            a.add_scaled(&sub.exprs[i], 1.0);
            a.compact();
            cons.push(GenCon { ratios: Vec::new(), affine: a });
        }
    }
    // Drop constraints that vanished entirely under substitution (e.g. a
    // bound on a variable that elimination pinned to a constant). A
    // *violated* constant constraint means infeasibility.
    let mut kept = Vec::with_capacity(cons.len());
    for gc in cons {
        if gc.ratios.is_empty() && gc.affine.terms.is_empty() {
            if gc.affine.constant > 1e-9 {
                return Err(SolverError::Infeasible);
            }
            continue;
        }
        kept.push(gc);
    }

    // Objective in z.
    let obj_sparse: Vec<(usize, f64)> = p
        .objective()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0.0)
        .map(|(i, &c)| (i, c))
        .collect();
    let obj_aff = sub.map_linear(&obj_sparse, 0.0);
    let mut objective = vec![0.0; sub.n_reduced];
    for &(i, c) in &obj_aff.terms {
        objective[i] += c;
    }
    Ok((Nlp { n: sub.n_reduced, objective, cons: kept }, sub))
}

/// Barrier potential `t·f₀(z) − Σ log(−gᵢ(z))`; `+inf` when infeasible.
fn potential(nlp: &Nlp, t: f64, z: &[f64]) -> f64 {
    let mut v = t * dot(&nlp.objective, z);
    for gc in &nlp.cons {
        let g = gc.eval(z);
        if g >= 0.0 || !g.is_finite() {
            return f64::INFINITY;
        }
        v -= (-g).ln();
    }
    v
}

/// One centering stage: damped Newton on the barrier potential.
///
/// Returns the number of Newton iterations used.
fn center(
    nlp: &Nlp,
    t: f64,
    z: &mut Vec<f64>,
    early_stop: EarlyStop<'_>,
) -> Result<usize, SolverError> {
    let n = nlp.n;
    let mut scratch = Vec::with_capacity(n);
    for iter in 0..MAX_NEWTON_PER_STAGE {
        if let Some(stop) = early_stop {
            if stop(z) {
                return Ok(iter);
            }
        }
        // Assemble gradient and Hessian of the barrier potential.
        let mut grad: Vec<f64> = nlp.objective.iter().map(|c| t * c).collect();
        let mut h = Matrix::zeros(n, n);
        for gc in &nlp.cons {
            let g = gc.eval(z);
            debug_assert!(g < 0.0, "iterate left the strictly feasible region");
            let inv = -1.0 / g; // positive
            let cg = gc.grad(z, n);
            for (gi, ci) in grad.iter_mut().zip(&cg) {
                *gi += inv * ci;
            }
            h.rank1_update(inv * inv, &cg);
            gc.add_hess(z, inv, &mut h, &mut scratch);
        }
        let max_diag = (0..n).map(|i| h[(i, i)].abs()).fold(0.0f64, f64::max);
        h.add_diagonal(1e-12 * (1.0 + max_diag));
        let neg_grad: Vec<f64> = grad.iter().map(|g| -g).collect();
        let dz = match h.cholesky() {
            Ok(l) => Matrix::cholesky_solve(&l, &neg_grad),
            Err(_) => h.solve(&neg_grad)?,
        };
        let decrement = -dot(&grad, &dz); // λ² = ∇fᵀ H⁻¹ ∇f
        if decrement <= 0.0
            || decrement / 2.0 < 1e-12 * (1.0 + potential(nlp, t, z).abs().min(1e12))
        {
            return Ok(iter);
        }
        // Backtracking line search: first into the domain, then Armijo.
        let f0 = potential(nlp, t, z);
        let mut alpha = 1.0f64;
        let mut trial: Vec<f64>;
        let mut ok = false;
        for _ in 0..80 {
            trial = z.clone();
            for (ti, di) in trial.iter_mut().zip(&dz) {
                *ti += alpha * di;
            }
            let f1 = potential(nlp, t, &trial);
            if f1.is_finite() && f1 <= f0 - 0.25 * alpha * decrement {
                *z = trial;
                ok = true;
                break;
            }
            alpha *= 0.5;
        }
        if !ok {
            // No descent possible: already at numerical optimum.
            return Ok(iter);
        }
        if norm2(z) > UNBOUNDED_NORM {
            return Err(SolverError::Unbounded);
        }
    }
    Ok(MAX_NEWTON_PER_STAGE)
}

/// Full barrier loop from a strictly feasible starting point. `warm` marks
/// the start as a near-optimal seed (see [`WARM_GAP`]): the ladder begins
/// several rungs up, with the same duality-gap stopping criterion, so the
/// answer matches a cold solve to within solver tolerance while spending
/// far fewer Newton iterations.
fn barrier_loop(
    nlp: &Nlp,
    mut z: Vec<f64>,
    early_stop: EarlyStop<'_>,
    warm: bool,
) -> Result<(Vec<f64>, usize), SolverError> {
    let m = nlp.cons.len().max(1) as f64;
    let mut t = 1.0f64;
    // Scale the initial t so the first stage is not wildly off-center.
    let obj0 = dot(&nlp.objective, &z).abs();
    if obj0 > 1.0 {
        t = (m / obj0).clamp(1e-6, 1.0);
    }
    if warm {
        // Trust the seed — but boundedly: skip two rungs of the ladder,
        // never past the rung whose duality gap matches [`WARM_GAP`].
        // Seeds that transfer imperfectly (e.g. compute-floor expressions,
        // whose optima do not scale with the budget) still converge to the
        // cold optimum because the remaining ladder is walked normally; a
        // deeper jump was measured to stall Newton on exactly those seeds.
        t = (t * T_MU * T_MU).min((m / (WARM_GAP * (1.0 + obj0))).max(t));
    }
    let mut total_iters = 0usize;
    for _ in 0..MAX_BARRIER_STAGES {
        total_iters += center(nlp, t, &mut z, early_stop)?;
        if let Some(stop) = early_stop {
            if stop(&z) {
                return Ok((z, total_iters));
            }
        }
        let gap = m / t;
        let scale = 1.0 + dot(&nlp.objective, &z).abs();
        if gap <= GAP_TOL * scale {
            return Ok((z, total_iters));
        }
        t *= T_MU;
    }
    Ok((z, total_iters))
}

/// Builds a heuristic starting point in the *original* variable space.
fn initial_guess(p: &ConvexProblem) -> Vec<f64> {
    let n = p.n_vars();
    if let Some(g) = p.guess() {
        if g.len() == n {
            return g.to_vec();
        }
    }
    let (_, _, _, lower, upper) = p.parts();
    (0..n)
        .map(|i| match (lower[i], upper[i]) {
            (Some(l), Some(u)) => 0.5 * (l + u),
            (Some(l), None) => l + l.abs().max(1.0),
            (None, Some(u)) => u - u.abs().max(1.0),
            (None, None) => 0.0,
        })
        .collect()
}

/// Finds a point inside the domain of every ratio denominator (all
/// `den_r(z) > 0`) by subgradient ascent on `min_r den_r(z)`.
fn enter_domain(nlp: &Nlp, z: &mut [f64]) -> Result<(), SolverError> {
    let dens: Vec<&Affine> =
        nlp.cons.iter().flat_map(|gc| gc.ratios.iter().map(|(_, d)| d)).collect();
    if dens.is_empty() {
        return Ok(());
    }
    for _ in 0..500 {
        let (mut min_v, mut min_i) = (f64::INFINITY, 0usize);
        for (i, d) in dens.iter().enumerate() {
            let v = d.eval(z);
            if v < min_v {
                min_v = v;
                min_i = i;
            }
        }
        if min_v > 1e-9 {
            return Ok(());
        }
        // Step along the gradient of the most-violated denominator.
        let d = dens[min_i];
        let gnorm: f64 = d.terms.iter().map(|&(_, b)| b * b).sum::<f64>().sqrt();
        if gnorm < 1e-300 {
            return Err(SolverError::Infeasible);
        }
        let step = (1e-6 - min_v) / gnorm / gnorm + 1e-3;
        for &(i, b) in &d.terms {
            z[i] += step * b;
        }
    }
    Err(SolverError::Infeasible)
}

/// Phase-I: minimize slack `s` over `(z, s)` with `g_i(z) ≤ s`.
fn phase_one(nlp: &Nlp, z0: &[f64]) -> Result<Vec<f64>, SolverError> {
    let n = nlp.n;
    let s_idx = n;
    let mut cons = Vec::with_capacity(nlp.cons.len());
    for gc in &nlp.cons {
        let mut relaxed = gc.clone();
        relaxed.affine.terms.push((s_idx, -1.0));
        cons.push(relaxed);
    }
    let mut objective = vec![0.0; n + 1];
    objective[s_idx] = 1.0;
    let aux = Nlp { n: n + 1, objective, cons };
    // Strictly feasible start for phase-I: s above the worst violation.
    let worst = nlp.cons.iter().map(|gc| gc.eval(z0)).fold(f64::NEG_INFINITY, f64::max);
    if !worst.is_finite() {
        return Err(SolverError::NumericalFailure("phase-I start outside ratio domain"));
    }
    let mut zs = z0.to_vec();
    zs.push(worst.max(0.0) + 1.0);
    let stop = |x: &[f64]| x[s_idx] < -1e-9;
    let (zs, _) = barrier_loop(&aux, zs, Some(&stop), false)?;
    if zs[s_idx] >= 0.0 {
        return Err(SolverError::Infeasible);
    }
    Ok(zs[..n].to_vec())
}

/// Entry point used by [`ConvexProblem::solve`].
pub(crate) fn solve(p: &ConvexProblem) -> Result<Solution, SolverError> {
    solve_seeded(p, None)
}

/// Entry point used by [`ConvexProblem::solve_from`]: when `seed` is given
/// it overrides the problem's suggested start **and** is trusted as
/// near-optimal, entering the barrier ladder several rungs up (warm
/// start). An infeasible seed is repaired by phase-I exactly like a cold
/// start, so warm solves are never less robust — only cheaper when the
/// seed is good.
pub(crate) fn solve_seeded(
    p: &ConvexProblem,
    seed: Option<&[f64]>,
) -> Result<Solution, SolverError> {
    let (nlp, sub) = lower(p)?;
    if nlp.n == 0 {
        // Everything was pinned by equalities; just validate feasibility.
        let x = sub.recover(&[]);
        if p.max_violation(&x) > 1e-6 {
            return Err(SolverError::Infeasible);
        }
        return Ok(Solution { x: x.clone(), objective: p.objective_at(&x), newton_iters: 0 });
    }
    // Map the heuristic start into reduced space via least squares
    // z0 = argmin ‖x_p + N z − x0‖.
    let warm = matches!(seed, Some(s) if s.len() == p.n_vars());
    let x0 = match seed {
        Some(s) if s.len() == p.n_vars() => s.to_vec(),
        _ => initial_guess(p),
    };
    let mut z0 = reduce_start(&sub, &x0, nlp.n)?;
    enter_domain(&nlp, &mut z0)?;
    let strictly_feasible = nlp.cons.iter().all(|gc| gc.eval(&z0) < -1e-9);
    let z_start = if strictly_feasible { z0 } else { phase_one(&nlp, &z0)? };
    let (z, iters) = barrier_loop(&nlp, z_start, None, warm && strictly_feasible)?;
    let x = sub.recover(&z);
    Ok(Solution { x: x.clone(), objective: p.objective_at(&x), newton_iters: iters })
}

/// Least-squares mapping of a full-space guess into reduced coordinates.
fn reduce_start(sub: &Substitution, x0: &[f64], nz: usize) -> Result<Vec<f64>, SolverError> {
    if sub.exprs.len() == nz
        && sub.exprs.iter().enumerate().all(|(i, e)| e.constant == 0.0 && e.terms == [(i, 1.0)])
    {
        return Ok(x0.to_vec());
    }
    // Normal equations NᵀN z = Nᵀ (x0 − x_p).
    let mut ntn = Matrix::zeros(nz, nz);
    let mut rhs = vec![0.0; nz];
    let mut row = vec![0.0; nz];
    for (i, e) in sub.exprs.iter().enumerate() {
        row.iter_mut().for_each(|v| *v = 0.0);
        for &(j, b) in &e.terms {
            row[j] = b;
        }
        ntn.rank1_update(1.0, &row);
        let resid = x0[i] - e.constant;
        for (r, b) in rhs.iter_mut().zip(&row) {
            *r += b * resid;
        }
    }
    ntn.add_diagonal(1e-12);
    ntn.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use crate::convex::{ConvexProblem, RatioTerm};
    use crate::error::SolverError;

    /// min 4/x0 + 1/x1 s.t. x0+x1 ≤ 10: optimum x ∝ √c → (20/3, 10/3).
    #[test]
    fn sqrt_rule_allocation() {
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 4.0), (1, 1.0)]).minus_var(2));
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let s = p.solve().unwrap();
        assert!((s.x[0] - 20.0 / 3.0).abs() < 1e-3, "x0={}", s.x[0]);
        assert!((s.x[1] - 10.0 / 3.0).abs() < 1e-3, "x1={}", s.x[1]);
        assert!((s.objective - 0.9).abs() < 1e-4);
    }

    /// Bottleneck (max) objective: min max(8/x0, 2/x1), x0+x1 ≤ 10.
    /// Optimum equalizes: 8/x0 = 2/x1, x0 = 8, x1 = 2, value 1.
    #[test]
    fn bottleneck_equalization() {
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 8.0)]).minus_var(2));
        p.add_ratio_le(RatioTerm::new(vec![(1, 2.0)]).minus_var(2));
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let s = p.solve().unwrap();
        assert!((s.x[0] - 8.0).abs() < 1e-2, "x0={}", s.x[0]);
        assert!((s.x[1] - 2.0).abs() < 1e-2, "x1={}", s.x[1]);
        assert!((s.objective - 1.0).abs() < 1e-3);
    }

    /// Equality constraints are eliminated: min 1/x0 + 1/x1 with x0 = 2·x1
    /// and x0 + x1 = 9 has the unique feasible point (6, 3).
    #[test]
    fn equality_elimination_pins_point() {
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 1.0), (1, 1.0)]).minus_var(2));
        p.add_lin_eq(&[(0, 1.0), (1, -2.0)], 0.0);
        p.add_lin_eq(&[(0, 1.0), (1, 1.0)], 9.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let s = p.solve().unwrap();
        assert!((s.x[0] - 6.0).abs() < 1e-5);
        assert!((s.x[1] - 3.0).abs() < 1e-5);
    }

    /// Inconsistent equalities are reported as infeasible.
    #[test]
    fn inconsistent_equalities() {
        let mut p = ConvexProblem::new(2);
        p.add_lin_eq(&[(0, 1.0), (1, 1.0)], 1.0);
        p.add_lin_eq(&[(0, 1.0), (1, 1.0)], 2.0);
        assert_eq!(p.solve().unwrap_err(), SolverError::Infeasible);
    }

    /// Contradictory inequalities are reported as infeasible via phase-I.
    #[test]
    fn contradictory_inequalities() {
        let mut p = ConvexProblem::new(1);
        p.add_lin_le(&[(0, 1.0)], 1.0);
        p.add_lin_le(&[(0, -1.0)], -2.0); // x ≥ 2 and x ≤ 1
        assert_eq!(p.solve().unwrap_err(), SolverError::Infeasible);
    }

    /// Phase-I repairs an infeasible starting guess (ordering constraints).
    #[test]
    fn ordering_constraints() {
        // min max(1/x0, 1/x1, 4/x2) st x0+x1+x2 ≤ 12, x0 ≥ x1 ≥ x2.
        let mut p = ConvexProblem::new(4);
        p.minimize(&[(3, 1.0)]);
        for (i, c) in [(0usize, 1.0f64), (1, 1.0), (2, 4.0)] {
            p.add_ratio_le(RatioTerm::new(vec![(i, c)]).minus_var(3));
        }
        p.add_lin_le(&[(0, 1.0), (1, 1.0), (2, 1.0)], 12.0);
        p.add_lin_le(&[(0, -1.0), (1, 1.0)], 0.0); // x1 ≤ x0
        p.add_lin_le(&[(1, -1.0), (2, 1.0)], 0.0); // x2 ≤ x1
        for i in 0..3 {
            p.set_lower(i, 1e-3);
        }
        // Deliberately violate the ordering in the suggested start.
        p.suggest_start(vec![1.0, 2.0, 9.0, 5.0]);
        let s = p.solve().unwrap();
        // Unconstrained-by-order optimum is (3, 3, 6) which violates
        // x2 ≤ x1; with ordering the best is x1 = x2 = t, 4/t = obj →
        // x = (4, 4, 4), obj = 1.
        assert!((s.x[0] - 4.0).abs() < 2e-2, "x={:?}", s.x);
        assert!((s.x[1] - 4.0).abs() < 2e-2);
        assert!((s.x[2] - 4.0).abs() < 2e-2);
    }

    /// A pure LP is handled too: min -x0 - 2 x1 on the unit box.
    #[test]
    fn linear_program_box() {
        let mut p = ConvexProblem::new(2);
        p.minimize(&[(0, -1.0), (1, -2.0)]);
        for i in 0..2 {
            p.set_lower(i, 0.0).set_upper(i, 1.0);
        }
        let s = p.solve().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    /// Unbounded detection: min -x with x ≥ 0 only.
    #[test]
    fn unbounded_problem() {
        let mut p = ConvexProblem::new(1);
        p.minimize(&[(0, -1.0)]);
        p.set_lower(0, 0.0);
        assert_eq!(p.solve().unwrap_err(), SolverError::Unbounded);
    }

    /// Warm-starting from (a perturbation of) the cold optimum reproduces
    /// the optimum within solver tolerance while spending fewer Newton
    /// iterations — the sweep-engine seeding contract.
    #[test]
    fn warm_start_converges_with_fewer_iterations() {
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 8.0)]).minus_var(2));
        p.add_ratio_le(RatioTerm::new(vec![(1, 2.0)]).minus_var(2));
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let cold = p.solve().unwrap();
        // Seed ~0.1% off the optimum, epigraph kept strictly feasible.
        let seed = vec![cold.x[0] * 0.999, cold.x[1] * 1.001, cold.x[2] * 1.001 + 1e-6];
        let warm = p.solve_from(&seed).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        for (w, c) in warm.x.iter().zip(&cold.x) {
            assert!((w - c).abs() < 1e-3, "warm {:?} vs cold {:?}", warm.x, cold.x);
        }
        assert!(
            warm.newton_iters < cold.newton_iters,
            "warm start should save iterations: {} vs {}",
            warm.newton_iters,
            cold.newton_iters
        );
    }

    /// An infeasible warm seed is repaired by phase-I — warm starting never
    /// loses robustness.
    #[test]
    fn bad_warm_seed_is_repaired() {
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 4.0), (1, 1.0)]).minus_var(2));
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        // Violates the budget row and carries a hopeless epigraph value.
        let warm = p.solve_from(&[50.0, 50.0, 0.0]).unwrap();
        let cold = p.solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-4);
        // A wrong-length seed silently falls back to the cold heuristics.
        let ignored = p.solve_from(&[1.0]).unwrap();
        assert!((ignored.objective - cold.objective).abs() < 1e-4);
    }

    /// Upper bounds interact with ratio objectives.
    #[test]
    fn capped_dimension() {
        // min max(10/x0, 10/x1) st x0 + x1 ≤ 20, x1 ≤ 4.
        let mut p = ConvexProblem::new(3);
        p.minimize(&[(2, 1.0)]);
        p.add_ratio_le(RatioTerm::new(vec![(0, 10.0)]).minus_var(2));
        p.add_ratio_le(RatioTerm::new(vec![(1, 10.0)]).minus_var(2));
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 20.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3).set_upper(1, 4.0);
        let s = p.solve().unwrap();
        // x1 pinned at 4, bottleneck 10/4 = 2.5; x0 only needs 4 but any
        // value in [4, 16] is optimal. Objective should be 2.5.
        assert!((s.objective - 2.5).abs() < 1e-3);
        assert!(s.x[1] <= 4.0 + 1e-6);
    }
}
