//! # libra-solver
//!
//! A small, dependency-free convex-optimization toolkit used by LIBRA in
//! place of the commercial Gurobi solver referenced by the paper.
//!
//! The LIBRA bandwidth-allocation problem
//!
//! ```text
//! minimize    Σ_k w_k · t_k
//! subject to  Σ_i c_{k,i}/B_i + aᵀB + d  ≤  t_k      (collective bottleneck)
//!             G·B ≤ h,  A·B = b,  l ≤ B ≤ u          (designer constraints)
//! ```
//!
//! is convex on `B > 0` (each `c/B_i` term is convex, and max/sum preserve
//! convexity), so a log-barrier interior-point method finds the same global
//! optimum the paper obtains from Gurobi's bilinear formulation
//! (`t_k · B_i ≥ c_{k,i}`).
//!
//! Components:
//! * [`linalg`] — dense matrices, LU / Cholesky factorizations, KKT solves.
//! * [`convex`] — problem intermediate representation ([`ConvexProblem`]).
//! * [`barrier`] — phase-I + log-barrier Newton interior-point solver.
//! * [`subgrad`] — projected-subgradient fallback used for cross-checking.
//! * [`scalar`] — 1-D minimizers (golden section, grid) for parametric
//!   searches such as LIBRA's perf-per-cost objective.
//!
//! # Example
//!
//! Minimize `4/x₀ + 1/x₁` subject to `x₀ + x₁ ≤ 10` (optimal split is
//! bandwidth-proportional to `√c`):
//!
//! ```
//! use libra_solver::convex::{ConvexProblem, RatioTerm};
//!
//! let mut p = ConvexProblem::new(3); // x0, x1, epigraph t
//! p.minimize(&[(2, 1.0)]);
//! p.add_ratio_le(RatioTerm::new(vec![(0, 4.0), (1, 1.0)]).minus_var(2));
//! p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
//! p.set_lower(0, 1e-3);
//! p.set_lower(1, 1e-3);
//! let sol = p.solve().unwrap();
//! assert!((sol.x[0] - 20.0 / 3.0).abs() < 1e-3);
//! assert!((sol.x[1] - 10.0 / 3.0).abs() < 1e-3);
//! ```

pub mod barrier;
pub mod convex;
pub mod error;
pub mod linalg;
pub mod scalar;
pub mod subgrad;

pub use convex::{ConvexProblem, RatioTerm, Solution};
pub use error::SolverError;
pub use scalar::{golden_section, grid_then_golden};
