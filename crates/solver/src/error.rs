//! Error types for the solver crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving an optimization problem.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A variable index referenced a variable that does not exist.
    BadVariable {
        /// The offending index.
        index: usize,
        /// Number of variables in the problem.
        n_vars: usize,
    },
    /// A ratio coefficient was negative or non-finite (the model would no
    /// longer be convex).
    BadCoefficient(f64),
    /// Phase-I could not find a strictly feasible point: the constraint set
    /// is (numerically) empty.
    Infeasible,
    /// The objective appears unbounded below on the feasible set.
    Unbounded,
    /// The Newton iteration failed to make progress (typically an extremely
    /// ill-conditioned problem).
    NumericalFailure(&'static str),
    /// The problem references a ratio term `c / x_i` but `x_i` has no
    /// positive lower bound, so the domain `x_i > 0` cannot be enforced.
    MissingPositiveLowerBound(usize),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::BadVariable { index, n_vars } => {
                write!(f, "variable index {index} out of range for {n_vars} variables")
            }
            SolverError::BadCoefficient(c) => {
                write!(f, "ratio coefficient {c} must be finite and non-negative")
            }
            SolverError::Infeasible => write!(f, "constraint set has no strictly feasible point"),
            SolverError::Unbounded => write!(f, "objective is unbounded below"),
            SolverError::NumericalFailure(what) => write!(f, "numerical failure: {what}"),
            SolverError::MissingPositiveLowerBound(i) => {
                write!(f, "variable {i} appears in a ratio term but has no positive lower bound")
            }
        }
    }
}

impl Error for SolverError {}
