//! Projected-subgradient minimization.
//!
//! Used as an independent cross-check of the interior-point solver (the two
//! must agree on convex problems) and in the `abl_solver` ablation bench. It
//! handles the canonical LIBRA feasible set — a total-bandwidth cap plus box
//! bounds — through an exact Euclidean projection.

/// Projects `x` onto `{ x : Σ x_i ≤ total, lower_i ≤ x_i ≤ upper_i }`.
///
/// Uses bisection on the simplex Lagrange multiplier when the cap is active.
/// `lower`/`upper` must satisfy `lower_i ≤ upper_i` and `Σ lower_i ≤ total`
/// for the set to be non-empty.
///
/// # Panics
/// Panics if slice lengths differ.
pub fn project_capped_box(x: &mut [f64], total: f64, lower: &[f64], upper: &[f64]) {
    assert_eq!(x.len(), lower.len());
    assert_eq!(x.len(), upper.len());
    // Clamp to the box first.
    for ((xi, &l), &u) in x.iter_mut().zip(lower).zip(upper) {
        *xi = xi.clamp(l, u);
    }
    let sum: f64 = x.iter().sum();
    if sum <= total {
        return;
    }
    // Bisection on λ ≥ 0 where x_i(λ) = clamp(x_i − λ, l_i, u_i).
    let mut lo = 0.0f64;
    let mut hi = x.iter().zip(lower).map(|(xi, l)| xi - l).fold(0.0f64, f64::max);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let s: f64 = x
            .iter()
            .zip(lower.iter().zip(upper))
            .map(|(xi, (&l, &u))| (xi - mid).clamp(l, u))
            .sum();
        if s > total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = hi;
    for ((xi, &l), &u) in x.iter_mut().zip(lower).zip(upper) {
        *xi = (*xi - lambda).clamp(l, u);
    }
}

/// Result of a subgradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgradResult {
    /// Best iterate found.
    pub x: Vec<f64>,
    /// Objective at the best iterate.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Minimizes `f` (value + subgradient callback) with projected subgradient
/// descent using a diminishing `step0 / √k` step size rule, keeping the best
/// iterate seen.
///
/// `project` must map any point onto the feasible set (e.g.
/// [`project_capped_box`]).
pub fn minimize_projected<F, P>(
    f: F,
    project: P,
    x0: Vec<f64>,
    step0: f64,
    iterations: usize,
) -> SubgradResult
where
    F: Fn(&[f64]) -> (f64, Vec<f64>),
    P: Fn(&mut [f64]),
{
    let mut x = x0;
    project(&mut x);
    let (mut best_v, _) = f(&x);
    let mut best_x = x.clone();
    for k in 1..=iterations {
        let (v, g) = f(&x);
        if v < best_v {
            best_v = v;
            best_x = x.clone();
        }
        let gnorm: f64 = g.iter().map(|gi| gi * gi).sum::<f64>().sqrt();
        if gnorm < 1e-300 {
            break;
        }
        let step = step0 / (k as f64).sqrt() / gnorm;
        for (xi, gi) in x.iter_mut().zip(&g) {
            *xi -= step * gi;
        }
        project(&mut x);
    }
    let (v, _) = f(&x);
    if v < best_v {
        best_v = v;
        best_x = x;
    }
    SubgradResult { x: best_x, value: best_v, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_respects_box_when_cap_inactive() {
        let mut x = vec![5.0, -3.0];
        project_capped_box(&mut x, 100.0, &[0.0, 0.0], &[4.0, 4.0]);
        assert_eq!(x, vec![4.0, 0.0]);
    }

    #[test]
    fn projection_hits_cap_uniformly() {
        let mut x = vec![10.0, 10.0];
        project_capped_box(&mut x, 10.0, &[0.0, 0.0], &[100.0, 100.0]);
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_feasible_point() {
        let mut x = vec![2.0, 3.0];
        let before = x.clone();
        project_capped_box(&mut x, 10.0, &[0.0, 0.0], &[5.0, 5.0]);
        assert_eq!(x, before);
    }

    #[test]
    fn subgradient_matches_sqrt_rule() {
        // min 4/x0 + 1/x1 st x0 + x1 ≤ 10 → (20/3, 10/3).
        let f = |x: &[f64]| {
            let v = 4.0 / x[0] + 1.0 / x[1];
            let g = vec![-4.0 / (x[0] * x[0]), -1.0 / (x[1] * x[1])];
            (v, g)
        };
        let proj = |x: &mut [f64]| project_capped_box(x, 10.0, &[1e-3, 1e-3], &[10.0, 10.0]);
        let r = minimize_projected(f, proj, vec![5.0, 5.0], 2.0, 20_000);
        assert!((r.x[0] - 20.0 / 3.0).abs() < 5e-2, "x={:?}", r.x);
        assert!((r.value - 0.9).abs() < 1e-3);
    }

    #[test]
    fn subgradient_handles_max_objective() {
        // min max(8/x0, 2/x1) st x0 + x1 ≤ 10 → x = (8, 2), value 1.
        let f = |x: &[f64]| {
            let a = 8.0 / x[0];
            let b = 2.0 / x[1];
            if a >= b {
                (a, vec![-8.0 / (x[0] * x[0]), 0.0])
            } else {
                (b, vec![0.0, -2.0 / (x[1] * x[1])])
            }
        };
        let proj = |x: &mut [f64]| project_capped_box(x, 10.0, &[1e-3, 1e-3], &[10.0, 10.0]);
        let r = minimize_projected(f, proj, vec![5.0, 5.0], 2.0, 40_000);
        assert!((r.value - 1.0).abs() < 5e-3, "value={}", r.value);
    }
}
