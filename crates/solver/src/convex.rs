//! Problem intermediate representation for LIBRA's convex programs.
//!
//! A [`ConvexProblem`] holds a linear objective, *ratio constraints* of the
//! form `Σ c/x_i + aᵀx + d ≤ 0` (the epigraph form of LIBRA's bottleneck
//! `max_i traffic_i / B_i` terms), linear equalities/inequalities, and box
//! bounds. Such a problem is convex whenever every ratio denominator is kept
//! strictly positive, which the solver enforces through lower bounds.

use crate::barrier;
use crate::error::SolverError;

/// One convex constraint `Σ_r c_r / x_{i_r} + Σ_l a_l · x_{j_l} + d ≤ 0`.
///
/// All ratio coefficients `c_r` must be non-negative — this is what keeps the
/// constraint convex on the positive orthant. Epigraph variables enter
/// through the linear part with coefficient `-1` (see [`RatioTerm::minus_var`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RatioTerm {
    ratios: Vec<(usize, f64)>,
    linear: Vec<(usize, f64)>,
    constant: f64,
}

impl RatioTerm {
    /// Creates a constraint body from `(variable, coefficient)` ratio pairs,
    /// i.e. `Σ coefficient / x_variable`.
    pub fn new(ratios: Vec<(usize, f64)>) -> Self {
        RatioTerm { ratios, linear: Vec::new(), constant: 0.0 }
    }

    /// Adds a linear term `coef · x_var`.
    pub fn plus_linear(mut self, var: usize, coef: f64) -> Self {
        self.linear.push((var, coef));
        self
    }

    /// Adds a constant offset.
    pub fn plus_const(mut self, d: f64) -> Self {
        self.constant += d;
        self
    }

    /// Subtracts variable `var` — the usual way to bind an epigraph variable,
    /// turning the body into `… − x_var ≤ 0`, i.e. `… ≤ x_var`.
    pub fn minus_var(self, var: usize) -> Self {
        self.plus_linear(var, -1.0)
    }

    /// The `(variable, coefficient)` ratio pairs.
    pub fn ratios(&self) -> &[(usize, f64)] {
        &self.ratios
    }

    /// The `(variable, coefficient)` linear pairs.
    pub fn linear(&self) -> &[(usize, f64)] {
        &self.linear
    }

    /// The constant offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Evaluates the constraint body at `x`.
    ///
    /// Returns `+inf` outside the domain (a non-positive denominator).
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut v = self.constant;
        for &(i, c) in &self.ratios {
            if x[i] <= 0.0 {
                return f64::INFINITY;
            }
            v += c / x[i];
        }
        for &(j, a) in &self.linear {
            v += a * x[j];
        }
        v
    }

    /// Accumulates the gradient of the body at `x` into `grad`.
    pub fn add_grad(&self, x: &[f64], grad: &mut [f64]) {
        for &(i, c) in &self.ratios {
            grad[i] -= c / (x[i] * x[i]);
        }
        for &(j, a) in &self.linear {
            grad[j] += a;
        }
    }

    /// Writes the gradient of the body at `x` into a fresh dense vector.
    pub fn grad(&self, x: &[f64], n: usize) -> Vec<f64> {
        let mut g = vec![0.0; n];
        self.add_grad(x, &mut g);
        g
    }

    /// The diagonal Hessian entries `(variable, 2c/x³)` at `x`.
    pub fn hess_diag(&self, x: &[f64]) -> Vec<(usize, f64)> {
        self.ratios.iter().map(|&(i, c)| (i, 2.0 * c / (x[i] * x[i] * x[i]))).collect()
    }

    fn validate(&self, n: usize) -> Result<(), SolverError> {
        for &(i, c) in &self.ratios {
            if i >= n {
                return Err(SolverError::BadVariable { index: i, n_vars: n });
            }
            if !(c.is_finite() && c >= 0.0) {
                return Err(SolverError::BadCoefficient(c));
            }
        }
        for &(j, _) in &self.linear {
            if j >= n {
                return Err(SolverError::BadVariable { index: j, n_vars: n });
            }
        }
        Ok(())
    }
}

/// A sparse linear constraint `Σ a_i x_i {≤,=} b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCon {
    /// Sparse `(variable, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearCon {
    /// Evaluates `Σ a_i x_i − b` (≤ 0 when satisfied for inequalities).
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, a)| a * x[i]).sum::<f64>() - self.rhs
    }
}

/// The result of a successful solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Optimal value of the linear objective `cᵀx`.
    pub objective: f64,
    /// Total Newton iterations across all barrier stages.
    pub newton_iters: usize,
}

/// A convex program: linear objective, ratio constraints, linear constraints
/// and box bounds. See the [crate-level documentation](crate) for the model.
#[derive(Debug, Clone, Default)]
pub struct ConvexProblem {
    n: usize,
    objective: Vec<f64>,
    ratio_cons: Vec<RatioTerm>,
    lin_ineq: Vec<LinearCon>,
    lin_eq: Vec<LinearCon>,
    lower: Vec<Option<f64>>,
    upper: Vec<Option<f64>>,
    initial_guess: Option<Vec<f64>>,
}

/// The borrowed pieces of a problem handed to the barrier solver:
/// (ratio constraints, linear inequalities, linear equalities, lower
/// bounds, upper bounds).
pub(crate) type Parts<'a> =
    (&'a [RatioTerm], &'a [LinearCon], &'a [LinearCon], &'a [Option<f64>], &'a [Option<f64>]);

impl ConvexProblem {
    /// Creates a problem with `n` variables, no constraints, and a zero
    /// objective.
    pub fn new(n: usize) -> Self {
        ConvexProblem {
            n,
            objective: vec![0.0; n],
            ratio_cons: Vec::new(),
            lin_ineq: Vec::new(),
            lin_eq: Vec::new(),
            lower: vec![None; n],
            upper: vec![None; n],
            initial_guess: None,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Sets the linear objective from sparse `(variable, coefficient)` pairs
    /// (to be minimized). Overwrites any previous objective.
    pub fn minimize(&mut self, terms: &[(usize, f64)]) -> &mut Self {
        self.objective = vec![0.0; self.n];
        for &(i, c) in terms {
            self.objective[i] += c;
        }
        self
    }

    /// The dense objective vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds a ratio constraint `body ≤ 0`.
    pub fn add_ratio_le(&mut self, body: RatioTerm) -> &mut Self {
        self.ratio_cons.push(body);
        self
    }

    /// Adds a linear inequality `Σ a_i x_i ≤ b`.
    pub fn add_lin_le(&mut self, terms: &[(usize, f64)], rhs: f64) -> &mut Self {
        self.lin_ineq.push(LinearCon { terms: terms.to_vec(), rhs });
        self
    }

    /// Adds a linear equality `Σ a_i x_i = b`.
    pub fn add_lin_eq(&mut self, terms: &[(usize, f64)], rhs: f64) -> &mut Self {
        self.lin_eq.push(LinearCon { terms: terms.to_vec(), rhs });
        self
    }

    /// Sets a lower bound `x_var ≥ bound`.
    pub fn set_lower(&mut self, var: usize, bound: f64) -> &mut Self {
        self.lower[var] = Some(bound);
        self
    }

    /// Sets an upper bound `x_var ≤ bound`.
    pub fn set_upper(&mut self, var: usize, bound: f64) -> &mut Self {
        self.upper[var] = Some(bound);
        self
    }

    /// Suggests a starting point (it need not be feasible; phase-I will
    /// repair it, but a good guess speeds convergence).
    pub fn suggest_start(&mut self, x0: Vec<f64>) -> &mut Self {
        self.initial_guess = Some(x0);
        self
    }

    /// Accessors used by the barrier solver.
    pub(crate) fn parts(&self) -> Parts<'_> {
        (&self.ratio_cons, &self.lin_ineq, &self.lin_eq, &self.lower, &self.upper)
    }

    /// The suggested starting point, if any (what
    /// [`ConvexProblem::suggest_start`] installed) — callers composing a
    /// warm start from a compiled guess read it back through here.
    pub fn guess(&self) -> Option<&[f64]> {
        self.initial_guess.as_deref()
    }

    /// Validates variable indices, coefficient signs, and that every ratio
    /// denominator has a strictly positive lower bound.
    ///
    /// # Errors
    /// See [`SolverError`] variants for each failure mode.
    pub fn validate(&self) -> Result<(), SolverError> {
        for rc in &self.ratio_cons {
            rc.validate(self.n)?;
            for &(i, c) in rc.ratios() {
                if c > 0.0 && self.lower[i].is_none_or(|l| l <= 0.0) {
                    return Err(SolverError::MissingPositiveLowerBound(i));
                }
            }
        }
        for lc in self.lin_ineq.iter().chain(&self.lin_eq) {
            for &(i, _) in &lc.terms {
                if i >= self.n {
                    return Err(SolverError::BadVariable { index: i, n_vars: self.n });
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with default options.
    ///
    /// # Errors
    /// Returns an error if the problem is malformed, infeasible, unbounded,
    /// or numerically intractable.
    pub fn solve(&self) -> Result<Solution, SolverError> {
        self.validate()?;
        barrier::solve(self)
    }

    /// Solves the problem **warm-started** from `x0` — the seed API used
    /// by design-space sweeps, where neighboring grid points differ in one
    /// axis and the previous optimum is an excellent start.
    ///
    /// `x0` overrides any [`ConvexProblem::suggest_start`] suggestion and
    /// is additionally trusted as near-optimal: the interior-point ladder
    /// starts at a high barrier weight, skipping the centering stages a
    /// cold solve spends closing a gap the seed already closed. The
    /// stopping criterion (duality gap) is identical to [`solve`], so the
    /// returned optimum agrees with a cold solve to within solver
    /// tolerance — warm starting changes the path, never the target. A bad
    /// or infeasible seed degrades gracefully: phase-I repairs it and the
    /// solve proceeds cold.
    ///
    /// A seed of the wrong length is ignored (falls back to the cold
    /// heuristics).
    ///
    /// # Errors
    /// See [`ConvexProblem::solve`].
    ///
    /// [`solve`]: ConvexProblem::solve
    pub fn solve_from(&self, x0: &[f64]) -> Result<Solution, SolverError> {
        self.validate()?;
        barrier::solve_seeded(self, Some(x0))
    }

    /// Evaluates the linear objective at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        crate::linalg::dot(&self.objective, x)
    }

    /// Checks feasibility of `x` up to tolerance `tol` (all constraint
    /// violations at most `tol`).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.max_violation(x) <= tol
    }

    /// The largest constraint violation at `x` (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut v: f64 = 0.0;
        for rc in &self.ratio_cons {
            v = v.max(rc.eval(x));
        }
        for lc in &self.lin_ineq {
            v = v.max(lc.eval(x));
        }
        for lc in &self.lin_eq {
            v = v.max(lc.eval(x).abs());
        }
        for ((l, u), xi) in self.lower.iter().zip(&self.upper).zip(x) {
            if let Some(l) = l {
                v = v.max(l - xi);
            }
            if let Some(u) = u {
                v = v.max(xi - u);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_term_eval_and_grad() {
        let t = RatioTerm::new(vec![(0, 4.0)]).plus_linear(1, 2.0).plus_const(-3.0);
        let x = [2.0, 5.0];
        assert!((t.eval(&x) - (2.0 + 10.0 - 3.0)).abs() < 1e-12);
        let g = t.grad(&x, 2);
        assert!((g[0] - (-1.0)).abs() < 1e-12); // -4/4
        assert!((g[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_eval_outside_domain_is_infinite() {
        let t = RatioTerm::new(vec![(0, 1.0)]);
        assert!(t.eval(&[0.0]).is_infinite());
        assert!(t.eval(&[-1.0]).is_infinite());
    }

    #[test]
    fn validate_rejects_bad_index() {
        let mut p = ConvexProblem::new(1);
        p.add_ratio_le(RatioTerm::new(vec![(3, 1.0)]));
        assert!(matches!(p.validate(), Err(SolverError::BadVariable { index: 3, .. })));
    }

    #[test]
    fn validate_rejects_negative_coefficient() {
        let mut p = ConvexProblem::new(1);
        p.set_lower(0, 0.1);
        p.add_ratio_le(RatioTerm::new(vec![(0, -1.0)]));
        assert!(matches!(p.validate(), Err(SolverError::BadCoefficient(_))));
    }

    #[test]
    fn validate_requires_positive_lower_bound() {
        let mut p = ConvexProblem::new(1);
        p.add_ratio_le(RatioTerm::new(vec![(0, 1.0)]));
        assert!(matches!(p.validate(), Err(SolverError::MissingPositiveLowerBound(0))));
    }

    #[test]
    fn max_violation_reports_worst() {
        let mut p = ConvexProblem::new(2);
        p.add_lin_le(&[(0, 1.0)], 1.0);
        p.add_lin_eq(&[(1, 1.0)], 3.0);
        let v = p.max_violation(&[2.0, 0.0]);
        assert!((v - 3.0).abs() < 1e-12);
    }
}
