//! The event-driven evaluation backend: `libra_core::eval::EvalBackend`
//! implemented by the chunked multi-rail collective engine.
//!
//! [`EventSimBackend`] is the adapter between a [`CommPlan`] and the
//! [`crate::collective`] machinery: every network dimension becomes a FIFO
//! bandwidth server sized from the bandwidth vector under evaluation
//! (i.e. from a `Design`'s `bw`), each phase's operations become a batch of
//! concurrently released [`CollectiveJob`]s split into pipelined chunks,
//! and the phase's makespan is measured on the integer-picosecond event
//! timeline. Sequential phases sum; [`CommPhase::repeat`] multiplies a
//! phase's makespan (the fabric drains between phases, so a repeated phase
//! is exactly periodic).
//!
//! # Agreement with the analytical backend
//!
//! For a single-collective phase the analytical model
//! (`max_i traffic_i / B_i`) is a **lower bound** on the simulated
//! makespan: it assumes the bottleneck dimension streams continuously. The
//! simulation adds only the chunk pipeline's fill/drain bubble — the
//! bottleneck dimension idles while the first/last chunk traverses the
//! other dimensions — which costs at most (a small multiple of) one
//! chunk's serial traversal, `Σ_i traffic_i / (chunks · B_i)`, itself at
//! most `ndims / chunks` of the analytical time. With the paper's 64
//! chunks on a ≤ 4-dim fabric that is a ≤ 6.25 % relative gap;
//! [`EventSimBackend::agreement_bound`] exposes the bound so sweeps can
//! set their cross-validation tolerance from first principles, and the
//! repo's differential property tests enforce it.

use std::cell::RefCell;

use libra_core::eval::{validate_plan, CommPhase, CommPlan, EvalBackend};
use libra_core::LibraError;

use crate::collective::{BatchExt, EngineScratch, FixedOrder, JobSpec, Trace};
use crate::event::ps_to_secs;

thread_local! {
    /// Per-thread engine arena shared by every event-driven backend
    /// evaluation on this thread. `EvalBackend::eval_plan` takes `&self`
    /// and backends are shared across rayon workers, so the scratch is
    /// per-thread rather than per-backend: after warm-up, plan evaluation
    /// performs no heap allocation at all.
    static EVAL_SCRATCH: RefCell<(EngineScratch, BatchExt)> =
        RefCell::new((EngineScratch::new(), BatchExt::none()));
}

/// Prices a [`CommPlan`] on the chunked engine: each phase's non-trivial
/// ops become concurrently released jobs split into `chunks` pipelined
/// chunks, executed on per-dimension FIFO servers under the [`BatchExt`]
/// `ext_of` writes for that phase (α-β stage overheads, offload flags —
/// the buffer arrives cleared and is reused across phases and calls);
/// sequential phases sum and [`CommPhase::repeat`] multiplies.
///
/// This is the single plan→engine adapter shared by every event-driven
/// backend — [`EventSimBackend`] is the no-extension case, and
/// `libra_net`'s `NetSimBackend` derives per-phase extensions from the
/// plan's network spec — so the op-eligibility filter and repeat
/// semantics cannot drift between them.
///
/// Evaluation runs on the thread-local [`EngineScratch`] with
/// [`Trace::Off`]: no `GroupSpan` is cloned, no stage record is collected,
/// and steady-state calls allocate nothing. Results are bit-identical to
/// driving [`crate::collective::run_batch_ext`] phase by phase (the two
/// share one event loop).
///
/// # Errors
/// See [`EvalBackend::eval_plan`].
pub fn eval_plan_on_engine(
    n_dims: usize,
    bw: &[f64],
    plan: &CommPlan,
    chunks: usize,
    mut ext_of: impl FnMut(&CommPhase, &mut BatchExt),
) -> Result<f64, LibraError> {
    validate_plan(n_dims, bw, plan)?;
    // Take the warm buffers out of the thread-local (leaving fresh
    // defaults) rather than holding a RefCell borrow across `ext_of`:
    // a closure that reentrantly evaluates another plan on this thread
    // then simply warms up its own temporary arena instead of panicking.
    let (mut scratch, mut ext) = EVAL_SCRATCH.take();
    let mut total = 0.0f64;
    for phase in &plan.phases {
        if phase.repeat == 0 {
            continue;
        }
        let eligible = || phase.ops.iter().filter(|op| op.bytes > 0.0 && !op.span.is_trivial());
        if eligible().next().is_none() {
            continue;
        }
        ext.clear();
        ext_of(phase, &mut ext);
        let makespan = scratch.run_jobs(
            n_dims,
            bw,
            &ext,
            eligible().map(|op| JobSpec {
                collective: op.collective,
                bytes: op.bytes,
                span: &op.span,
                chunks,
                release: 0,
            }),
            &mut FixedOrder,
            Trace::Off,
        );
        total += phase.repeat as f64 * ps_to_secs(makespan);
    }
    EVAL_SCRATCH.replace((scratch, ext));
    Ok(total)
}

/// The event-driven backend: chunked multi-rail execution on per-dimension
/// FIFO bandwidth servers, canonical ([`FixedOrder`]) dimension order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSimBackend {
    /// Chunks per collective (the paper's evaluation uses 64, §V-B).
    /// More chunks pipeline better and converge toward the analytical
    /// bound; fewer chunks expose bigger fill/drain bubbles.
    pub chunks: usize,
}

impl Default for EventSimBackend {
    fn default() -> Self {
        EventSimBackend { chunks: 64 }
    }
}

impl EventSimBackend {
    /// A backend splitting every collective into `chunks` pipelined chunks.
    ///
    /// # Panics
    /// Panics if `chunks == 0`.
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "collectives need at least one chunk");
        EventSimBackend { chunks }
    }

    /// Documented upper bound on the symmetric relative error between this
    /// backend and [`libra_core::eval::Analytical`] for plans whose phases
    /// hold a **single** collective each (the common cross-validation
    /// shape): `min(1, 2 · ndims / chunks)`.
    ///
    /// Why: the analytical time is the bottleneck dimension's streaming
    /// time, a lower bound on the simulated makespan. The simulation adds
    /// the pipeline fill/drain bubble, bounded by one chunk's serial
    /// traversal of all stages, `Σ_i traffic_i / (chunks · B_i) ≤
    /// ndims · analytical / chunks`; the extra factor 2 absorbs FIFO
    /// scheduling gaps (an All-Gather stage queued behind a later chunk's
    /// Reduce-Scatter on the same server) and picosecond rounding. Multi-op
    /// phases contend in ways the closed form does not model, so no bound
    /// is claimed for them.
    pub fn agreement_bound(&self, n_dims: usize) -> f64 {
        (2.0 * n_dims as f64 / self.chunks as f64).min(1.0)
    }
}

impl EvalBackend for EventSimBackend {
    fn name(&self) -> &str {
        "event-sim"
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        eval_plan_on_engine(n_dims, bw, plan, self.chunks, |_, _| {})
    }
}

/// Registers this crate's backends with a scenario
/// [`BackendRegistry`](libra_core::scenario::BackendRegistry):
/// `"event-sim"` ([`EventSimBackend`], chunked by
/// [`BackendConfig::chunks`](libra_core::scenario::BackendConfig)).
///
/// # Errors
/// Propagates duplicate-name rejections (registering twice into the same
/// registry).
pub fn register_backends(
    registry: &mut libra_core::scenario::BackendRegistry,
) -> Result<(), LibraError> {
    registry.register_described(
        "event-sim",
        "chunk-pipelined discrete-event simulation of per-dimension link servers",
        |cfg| Box::new(EventSimBackend::new(cfg.chunks)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::comm::{Collective, GroupSpan};
    use libra_core::eval::{Analytical, CommPhase, CommPlan};
    use libra_core::workload::CommOp;

    fn ar(gb: f64, span: GroupSpan) -> CommOp {
        CommOp::new(Collective::AllReduce, gb * 1e9, span)
    }

    fn span2() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 8)])
    }

    #[test]
    fn single_chunk_single_dim_is_exact() {
        // One dim, one chunk: no pipelining, no bubble — the simulated time
        // IS the analytical time.
        let plan = CommPlan::serial([ar(1.0, GroupSpan::new(vec![(0, 4)]))]);
        let bw = [10.0, 10.0];
        let sim = EventSimBackend::new(1).eval_plan(2, &bw, &plan).unwrap();
        let ana = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        assert!((sim - ana).abs() < 1e-9, "sim {sim} vs analytical {ana}");
    }

    #[test]
    fn sim_brackets_analytical_within_agreement_bound() {
        let plan = CommPlan::serial([ar(8.0, span2())]);
        let bw = [60.0, 20.0];
        let backend = EventSimBackend::default();
        let sim = backend.eval_plan(2, &bw, &plan).unwrap();
        let ana = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        assert!(sim >= ana * (1.0 - 1e-9), "sim below the analytical lower bound");
        let rel = libra_core::eval::rel_error(ana, sim);
        assert!(
            rel <= backend.agreement_bound(2),
            "rel error {rel} exceeds documented bound {}",
            backend.agreement_bound(2)
        );
    }

    #[test]
    fn repeat_is_exactly_periodic() {
        let once = CommPlan::serial([ar(2.0, span2())]);
        let thrice =
            CommPlan { phases: vec![CommPhase::solo(ar(2.0, span2())).repeated(3)], net: None };
        let bw = [30.0, 15.0];
        let backend = EventSimBackend::new(8);
        let t1 = backend.eval_plan(2, &bw, &once).unwrap();
        let t3 = backend.eval_plan(2, &bw, &thrice).unwrap();
        assert!((t3 - 3.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn concurrent_phase_ops_contend_for_bandwidth() {
        let solo = CommPlan::serial([ar(2.0, GroupSpan::new(vec![(0, 4)]))]);
        let pair = CommPlan {
            phases: vec![CommPhase::new(vec![
                ar(2.0, GroupSpan::new(vec![(0, 4)])),
                ar(2.0, GroupSpan::new(vec![(0, 4)])),
            ])],
            net: None,
        };
        let bw = [10.0, 10.0];
        let backend = EventSimBackend::new(8);
        let t1 = backend.eval_plan(2, &bw, &solo).unwrap();
        let t2 = backend.eval_plan(2, &bw, &pair).unwrap();
        assert!(t2 > t1 * 1.8, "two identical jobs on one dim ≈ double time, got {t2} vs {t1}");
    }

    #[test]
    fn empty_and_trivial_plans_cost_nothing() {
        let backend = EventSimBackend::default();
        assert_eq!(backend.eval_plan(2, &[1.0, 1.0], &CommPlan::new()).unwrap(), 0.0);
        let trivial = CommPlan::serial([ar(0.0, span2()), ar(1.0, GroupSpan::new(vec![]))]);
        assert_eq!(backend.eval_plan(2, &[1.0, 1.0], &trivial).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_bandwidth_like_analytical() {
        let plan = CommPlan::serial([ar(1.0, span2())]);
        let backend = EventSimBackend::default();
        assert!(backend.eval_plan(2, &[10.0, 0.0], &plan).is_err());
        assert!(backend.eval_plan(1, &[10.0], &plan).is_err());
    }

    #[test]
    fn agreement_bound_shrinks_with_chunks() {
        assert!(
            EventSimBackend::new(64).agreement_bound(2)
                < EventSimBackend::new(8).agreement_bound(2)
        );
        assert_eq!(EventSimBackend::new(1).agreement_bound(4), 1.0);
    }
}
