//! Deterministic discrete-event machinery.
//!
//! Simulation time is an integer count of **picoseconds** (`u64`), which
//! keeps event ordering exact (no floating-point ties) while covering
//! ~213 days of simulated time — far beyond any training iteration.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type Time = u64;

/// Clamps a floating-point picosecond count onto the integer timeline:
/// NaN and non-positive values map to `0`, values at or beyond `u64::MAX`
/// map to [`Time::MAX`], everything else rounds to the nearest tick.
fn saturate_ps(ps: f64) -> Time {
    if ps.is_nan() || ps <= 0.0 {
        return 0;
    }
    if ps >= u64::MAX as f64 {
        return Time::MAX;
    }
    ps.round() as Time
}

/// Converts seconds to picoseconds, rounding to the nearest tick.
///
/// Total and profile-independent (no `debug_assert`): NaN or negative
/// input saturates to `0`, durations beyond the `u64` range saturate to
/// [`Time::MAX`]. Identical behaviour in debug and release builds.
pub fn secs_to_ps(secs: f64) -> Time {
    saturate_ps(secs * 1e12)
}

/// Converts picoseconds back to seconds.
pub fn ps_to_secs(ps: Time) -> f64 {
    ps as f64 / 1e12
}

/// Transfer duration of `bytes` at `gbps` GB/s, in picoseconds.
///
/// Total and profile-independent, with **documented saturating
/// behaviour** (this used to debug-panic on `gbps <= 0` while silently
/// returning garbage in release builds):
///
/// * non-positive or NaN bandwidth → [`Time::MAX`] (a link with no
///   bandwidth never completes a transfer, regardless of payload);
/// * NaN or non-positive bytes → `0`;
/// * durations beyond the `u64` range → [`Time::MAX`];
/// * sub-picosecond transfers round to the nearest tick (so anything
///   under 0.5 ps, including zero bytes, is instantaneous).
///
/// Callers adding a saturated duration to a timestamp should use
/// `Time::saturating_add`, as the collective engine does.
pub fn transfer_ps(bytes: f64, gbps: f64) -> Time {
    if gbps.is_nan() || gbps <= 0.0 {
        return Time::MAX;
    }
    // bytes / (gbps · 1e9) seconds = bytes · 1e3 / gbps picoseconds.
    saturate_ps(bytes * 1e3 / gbps)
}

/// α-β transfer duration: `latency_ps` of bandwidth-independent message
/// overhead (hop latency, switch traversal) plus the serialization time of
/// `bytes` at `gbps` GB/s. Saturating like [`transfer_ps`]; the latency
/// term composes with `saturating_add`, so a saturated serialization time
/// stays [`Time::MAX`].
pub fn transfer_with_latency_ps(bytes: f64, gbps: f64, latency_ps: Time) -> Time {
    transfer_ps(bytes, gbps).saturating_add(latency_ps)
}

/// A time-ordered event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Drops all pending events and resets the FIFO sequence counter, so a
    /// reused queue orders identical event batches identically regardless
    /// of what ran through it before. Keeps the heap's allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(secs_to_ps(1.5), 1_500_000_000_000);
        assert!((ps_to_secs(secs_to_ps(0.123456)) - 0.123456).abs() < 1e-12);
    }

    /// `secs_to_ps` and `ps_to_secs` round-trip exactly for every whole
    /// picosecond count, and rounding is to-nearest at the 0.5 ps boundary.
    #[test]
    fn conversions_round_trip_and_round_to_nearest() {
        for &ps in &[0u64, 1, 2, 999, 1_000_000, 1_500_000_000_000, 123_456_789_012_345] {
            assert_eq!(secs_to_ps(ps_to_secs(ps)), ps, "round-trip of {ps} ps");
        }
        // 0.4 ps rounds down to zero; 0.6 ps rounds up to one tick.
        assert_eq!(secs_to_ps(0.4e-12), 0);
        assert_eq!(secs_to_ps(0.6e-12), 1);
        // Saturation: negative and NaN → 0; beyond-u64 → Time::MAX.
        assert_eq!(secs_to_ps(-1.0), 0);
        assert_eq!(secs_to_ps(f64::NAN), 0);
        assert_eq!(secs_to_ps(1e9), Time::MAX, "1e21 ps overflows u64");
    }

    #[test]
    fn transfer_duration_math() {
        // 1 GB at 100 GB/s = 10 ms = 1e10 ps.
        assert_eq!(transfer_ps(1e9, 100.0), 10_000_000_000);
        // Zero bytes take zero time.
        assert_eq!(transfer_ps(0.0, 50.0), 0);
    }

    /// Regression: `transfer_ps` used to debug-panic on non-positive
    /// bandwidth and return rounding garbage in release builds. It is now
    /// total with documented saturating behaviour, identical across
    /// profiles — this test runs under both `cargo test` and
    /// `cargo test --release` in CI.
    #[test]
    fn transfer_saturates_instead_of_panicking() {
        // No bandwidth → the transfer never completes.
        assert_eq!(transfer_ps(1e9, 0.0), Time::MAX);
        assert_eq!(transfer_ps(1e9, -3.0), Time::MAX);
        assert_eq!(transfer_ps(1e9, f64::NAN), Time::MAX);
        // Even a zero-byte payload cannot cross a dead link.
        assert_eq!(transfer_ps(0.0, 0.0), Time::MAX);
        // Negative / NaN payloads are instantaneous, not negative time.
        assert_eq!(transfer_ps(-1e9, 10.0), 0);
        assert_eq!(transfer_ps(f64::NAN, 10.0), 0);
        // Astronomically slow links saturate rather than wrap.
        assert_eq!(transfer_ps(1e30, 1e-6), Time::MAX);
        // Saturated durations compose safely with saturating_add.
        assert_eq!(Time::MAX.saturating_add(transfer_ps(1e9, 10.0)), Time::MAX);
    }

    /// α-β transfers add the latency on top of serialization and keep the
    /// saturating semantics of the pure-β form.
    #[test]
    fn transfer_with_latency_adds_and_saturates() {
        // 1 GB at 100 GB/s = 1e10 ps serialization + 500 ps latency.
        assert_eq!(transfer_with_latency_ps(1e9, 100.0, 500), 10_000_000_500);
        // Zero latency is exactly the pure-β duration.
        assert_eq!(transfer_with_latency_ps(1e9, 100.0, 0), transfer_ps(1e9, 100.0));
        // Latency alone still delays an empty payload.
        assert_eq!(transfer_with_latency_ps(0.0, 10.0, 42), 42);
        // Dead links and overflowing sums saturate instead of wrapping.
        assert_eq!(transfer_with_latency_ps(1e9, 0.0, 42), Time::MAX);
        assert_eq!(transfer_with_latency_ps(1e9, 10.0, Time::MAX), Time::MAX);
    }

    /// Sub-picosecond transfers round to the nearest tick.
    #[test]
    fn sub_picosecond_transfers_round_to_nearest() {
        // bytes · 1e3 / gbps ps: 0.4 ps → 0; 0.6 ps → 1.
        assert_eq!(transfer_ps(4e-4, 1.0), 0);
        assert_eq!(transfer_ps(6e-4, 1.0), 1);
        // An exactly representable half-tick (0.5 · 1e3 / 1000 = 0.5 ps)
        // rounds away from zero.
        assert_eq!(transfer_ps(0.5, 1000.0), 1);
    }

    /// FIFO tie-breaking survives interleaved pops: events pushed at an
    /// equal timestamp *after* some of that timestamp's events were already
    /// popped still drain in overall insertion order, and ties at a given
    /// time never jump ahead of earlier times.
    #[test]
    fn interleaved_pushes_keep_fifo_order_at_equal_times() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c"); // same timestamp, inserted after a pop
        q.push(3, "early");
        assert_eq!(q.pop(), Some((3, "early")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
