//! Deterministic discrete-event machinery.
//!
//! Simulation time is an integer count of **picoseconds** (`u64`), which
//! keeps event ordering exact (no floating-point ties) while covering
//! ~213 days of simulated time — far beyond any training iteration.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type Time = u64;

/// Converts seconds to picoseconds, rounding to the nearest tick.
pub fn secs_to_ps(secs: f64) -> Time {
    debug_assert!(secs >= 0.0 && secs.is_finite());
    (secs * 1e12).round() as Time
}

/// Converts picoseconds back to seconds.
pub fn ps_to_secs(ps: Time) -> f64 {
    ps as f64 / 1e12
}

/// Transfer duration of `bytes` at `gbps` GB/s, in picoseconds.
///
/// # Panics
/// Panics (debug) on non-positive bandwidth.
pub fn transfer_ps(bytes: f64, gbps: f64) -> Time {
    debug_assert!(gbps > 0.0, "bandwidth must be positive");
    // bytes / (gbps · 1e9) seconds = bytes · 1e3 / gbps picoseconds.
    (bytes * 1e3 / gbps).round().max(0.0) as Time
}

/// A time-ordered event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(secs_to_ps(1.5), 1_500_000_000_000);
        assert!((ps_to_secs(secs_to_ps(0.123456)) - 0.123456).abs() < 1e-12);
    }

    #[test]
    fn transfer_duration_math() {
        // 1 GB at 100 GB/s = 10 ms = 1e10 ps.
        assert_eq!(transfer_ps(1e9, 100.0), 10_000_000_000);
        // Zero bytes take zero time.
        assert_eq!(transfer_ps(0.0, 50.0), 0);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
