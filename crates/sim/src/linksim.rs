//! Link-level schedule execution on arbitrary topology graphs.
//!
//! Used to evaluate synthesized collective algorithms (the TACOS study,
//! Fig. 20): a [`LinkSchedule`] lists, per directed link, the ordered chunk
//! transmissions to perform. Execution respects data dependencies — a chunk
//! can only leave a node after it has arrived there — and per-link
//! serialization, and reports the completion time.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::event::{transfer_ps, Time};

/// A directed link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Bandwidth in GB/s.
    pub gbps: f64,
}

/// A directed topology graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkGraph {
    n_nodes: usize,
    links: Vec<Link>,
    /// `out[v]` = indices of links leaving `v`, precomputed at build time
    /// so the hot scheduling loops get a slice instead of a fresh `Vec`.
    out: Vec<Vec<usize>>,
}

impl LinkGraph {
    /// Builds a graph from explicit links.
    ///
    /// # Panics
    /// Panics if a link references a node `≥ n_nodes` or has non-positive
    /// bandwidth.
    pub fn new(n_nodes: usize, links: Vec<Link>) -> Self {
        let mut out = vec![Vec::new(); n_nodes];
        for (i, l) in links.iter().enumerate() {
            assert!(l.src < n_nodes && l.dst < n_nodes, "link endpoint out of range");
            assert!(l.gbps > 0.0, "link bandwidth must be positive");
            out[l.src].push(i);
        }
        LinkGraph { n_nodes, links, out }
    }

    /// A bidirectional ring of `n` nodes (two directed links per edge).
    pub fn ring(n: usize, gbps: f64) -> Self {
        let mut links = Vec::with_capacity(2 * n);
        for i in 0..n {
            let j = (i + 1) % n;
            links.push(Link { src: i, dst: j, gbps });
            links.push(Link { src: j, dst: i, gbps });
        }
        LinkGraph::new(n, links)
    }

    /// A k-dimensional torus with per-dimension link bandwidths
    /// (`dims[i].1` GB/s along dimension `i`). Dimension sizes of 2 get a
    /// single pair of links (no distinct wrap-around).
    pub fn torus(dims: &[(usize, f64)]) -> Self {
        let n: usize = dims.iter().map(|&(s, _)| s).product();
        let mut links = Vec::new();
        let mut stride = 1usize;
        for &(size, gbps) in dims {
            for node in 0..n {
                let coord = (node / stride) % size;
                if size == 2 && coord == 1 {
                    continue; // avoid doubled link pairs on size-2 dims
                }
                let next = (coord + 1) % size;
                let nb = node - coord * stride + next * stride;
                links.push(Link { src: node, dst: nb, gbps });
                links.push(Link { src: nb, dst: node, gbps });
            }
            stride *= size;
        }
        LinkGraph::new(n, links)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Indices of links leaving `node` (precomputed adjacency; no
    /// allocation per call).
    pub fn out_links(&self, node: usize) -> &[usize] {
        &self.out[node]
    }
}

/// One transmission in a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSend {
    /// Chunk identifier.
    pub chunk: usize,
    /// Payload bytes.
    pub bytes: f64,
}

/// Ordered transmissions per link (indexed like [`LinkGraph::links`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkSchedule {
    /// `per_link[l]` is the FIFO list of sends for link `l`.
    pub per_link: Vec<Vec<ChunkSend>>,
}

/// Execution failure: the schedule deadlocked (a link's next send waits for
/// a chunk that never arrives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleDeadlock {
    /// Links with unfinished work at the stall point.
    pub stuck_links: Vec<usize>,
}

impl fmt::Display for ScheduleDeadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link schedule deadlocked; {} links have unrunnable sends",
            self.stuck_links.len()
        )
    }
}

impl Error for ScheduleDeadlock {}

/// Per-node, per-chunk arrival times (`None` = never arrived).
pub type ArrivalTimes = Vec<Vec<Option<Time>>>;

/// Executes a schedule: chunk `c` initially resides at `initial_owner(c)`;
/// each link performs its sends in order, a send starting only once its
/// chunk has arrived at the link's source and the link is free. Returns the
/// completion time (ps) and the arrival times `arrivals[node][chunk]`.
///
/// # Errors
/// Returns [`ScheduleDeadlock`] when no remaining send can ever run.
pub fn execute(
    graph: &LinkGraph,
    schedule: &LinkSchedule,
    n_chunks: usize,
    initial_owner: impl Fn(usize) -> usize,
) -> Result<(Time, ArrivalTimes), ScheduleDeadlock> {
    let nl = graph.links.len();
    assert_eq!(schedule.per_link.len(), nl, "schedule must cover every link");
    let mut arrival: ArrivalTimes = vec![vec![None; n_chunks]; graph.n_nodes];
    for (c, o) in (0..n_chunks).map(|c| (c, initial_owner(c))) {
        arrival[o][c] = Some(0);
    }
    let mut next_idx = vec![0usize; nl];
    let mut free_at = vec![0 as Time; nl];
    let mut remaining: usize = schedule.per_link.iter().map(Vec::len).sum();
    let mut makespan: Time = 0;

    while remaining > 0 {
        // Find the runnable send with the earliest possible start
        // (tie-break: lowest link index, for determinism).
        let mut best: Option<(Time, usize)> = None;
        for (li, sends) in schedule.per_link.iter().enumerate() {
            if next_idx[li] >= sends.len() {
                continue;
            }
            let send = sends[next_idx[li]];
            let src = graph.links[li].src;
            if let Some(avail) = arrival[src][send.chunk] {
                let start = avail.max(free_at[li]);
                if best.is_none_or(|(bs, _)| start < bs) {
                    best = Some((start, li));
                }
            }
        }
        let Some((start, li)) = best else {
            let stuck: Vec<usize> =
                (0..nl).filter(|&l| next_idx[l] < schedule.per_link[l].len()).collect();
            return Err(ScheduleDeadlock { stuck_links: stuck });
        };
        let send = schedule.per_link[li][next_idx[li]];
        let link = graph.links[li];
        let end = start.saturating_add(transfer_ps(send.bytes, link.gbps));
        free_at[li] = end;
        next_idx[li] += 1;
        remaining -= 1;
        let dst_arrival = &mut arrival[link.dst][send.chunk];
        *dst_arrival = Some(dst_arrival.map_or(end, |t| t.min(end)));
        makespan = makespan.max(end);
    }
    Ok((makespan, arrival))
}

/// Checks that an All-Gather completed: every node holds every chunk.
pub fn is_allgather_complete(arrival: &[Vec<Option<Time>>]) -> bool {
    arrival.iter().all(|node| node.iter().all(Option::is_some))
}

/// The set of `(node, chunk)` pairs still missing.
pub fn missing_pairs(arrival: &[Vec<Option<Time>>]) -> HashSet<(usize, usize)> {
    let mut out = HashSet::new();
    for (n, chunks) in arrival.iter().enumerate() {
        for (c, a) in chunks.iter().enumerate() {
            if a.is_none() {
                out.insert((n, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring All-Gather, hand-scheduled: n−1 rounds of neighbor pushes.
    fn ring_allgather_schedule(n: usize, bytes: f64) -> (LinkGraph, LinkSchedule) {
        let graph = LinkGraph::ring(n, 10.0);
        let mut per_link = vec![Vec::new(); graph.links().len()];
        // Clockwise links only: link from i to (i+1)%n is at index 2i.
        for round in 0..n - 1 {
            for i in 0..n {
                // In round r, node i forwards chunk (i + n − r) % n.
                let chunk = (i + n - round) % n;
                per_link[2 * i].push(ChunkSend { chunk, bytes });
            }
        }
        (graph, LinkSchedule { per_link })
    }

    #[test]
    fn ring_allgather_completes_in_n_minus_1_rounds() {
        let n = 6;
        let bytes = 1e9; // 0.1 s per hop at 10 GB/s
        let (graph, sched) = ring_allgather_schedule(n, bytes);
        let (makespan, arrival) = execute(&graph, &sched, n, |c| c).unwrap();
        assert!(is_allgather_complete(&arrival));
        // (n−1) serialized rounds of 0.1 s.
        let expect = crate::event::secs_to_ps(0.1 * (n - 1) as f64);
        assert_eq!(makespan, expect);
    }

    #[test]
    fn deadlock_is_detected() {
        // Two nodes; node 1 must forward chunk 0 before receiving it —
        // and nobody ever sends it to node 1.
        let graph = LinkGraph::ring(2, 10.0);
        let mut per_link = vec![Vec::new(); graph.links().len()];
        // Find a link with src 1.
        let l1 = graph.out_links(1)[0];
        per_link[l1].push(ChunkSend { chunk: 1, bytes: 1e9 }); // chunk 1 starts at node 1: fine
        per_link[l1].push(ChunkSend { chunk: 0, bytes: 1e9 }); // never arrives: node 0 never sends
        let sched = LinkSchedule { per_link };
        let err = execute(&graph, &sched, 2, |c| c).unwrap_err();
        assert_eq!(err.stuck_links, vec![l1]);
    }

    #[test]
    fn torus_has_expected_link_count() {
        // 4×4×4 torus: 3 dims × 2 directions × 64 nodes = 384 links.
        let g = LinkGraph::torus(&[(4, 10.0), (4, 10.0), (4, 10.0)]);
        assert_eq!(g.n_nodes(), 64);
        assert_eq!(g.links().len(), 384);
        // Every node has 6 outgoing links.
        for v in 0..64 {
            assert_eq!(g.out_links(v).len(), 6, "node {v}");
        }
    }

    /// The precomputed adjacency lists link indices in insertion order —
    /// exactly what the old filter-scan returned.
    #[test]
    fn out_links_match_linear_scan_order() {
        let g = LinkGraph::torus(&[(4, 30.0), (4, 10.0)]);
        for v in 0..g.n_nodes() {
            let scan: Vec<usize> =
                g.links().iter().enumerate().filter(|(_, l)| l.src == v).map(|(i, _)| i).collect();
            assert_eq!(g.out_links(v), scan.as_slice(), "node {v}");
        }
    }

    #[test]
    fn size2_dims_do_not_double_links() {
        let g = LinkGraph::torus(&[(2, 5.0)]);
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.links().len(), 2, "one pair of directed links");
    }

    #[test]
    fn per_dim_bandwidths_differ() {
        let g = LinkGraph::torus(&[(4, 30.0), (4, 10.0)]);
        let fast = g.links().iter().filter(|l| l.gbps == 30.0).count();
        let slow = g.links().iter().filter(|l| l.gbps == 10.0).count();
        assert_eq!(fast, 32);
        assert_eq!(slow, 32);
    }

    #[test]
    fn dependencies_serialize_multi_hop_relay() {
        // 3-node path around a ring: chunk 0 travels 0 → 1 → 2.
        let graph = LinkGraph::ring(3, 10.0);
        let mut per_link = vec![Vec::new(); graph.links().len()];
        per_link[0].push(ChunkSend { chunk: 0, bytes: 1e9 }); // 0→1
        per_link[2].push(ChunkSend { chunk: 0, bytes: 1e9 }); // 1→2
        let sched = LinkSchedule { per_link };
        let (makespan, arrival) = execute(&graph, &sched, 1, |_| 0).unwrap();
        assert_eq!(makespan, crate::event::secs_to_ps(0.2));
        assert_eq!(arrival[2][0], Some(makespan));
    }
}
