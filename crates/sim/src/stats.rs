//! Utilization statistics and Gantt rendering (Fig. 8/9/10 support).

use crate::collective::StageRecord;
use crate::event::Time;

/// Total busy time of one dimension (intervals may be unsorted; overlapping
/// intervals are merged first).
pub fn busy_length(intervals: &[(Time, Time)]) -> Time {
    merged(intervals).iter().map(|(s, e)| e - s).sum()
}

/// Wall-clock length during which *any* of the dimensions is busy.
pub fn union_length(per_dim: &[Vec<(Time, Time)>]) -> Time {
    let all: Vec<(Time, Time)> = per_dim.iter().flatten().copied().collect();
    busy_length(&all)
}

/// Average bandwidth utilization: mean over dimensions of
/// `busy_i / window`, where `window` is the union communication window.
pub fn average_utilization(per_dim: &[Vec<(Time, Time)>]) -> f64 {
    let window = union_length(per_dim);
    if window == 0 || per_dim.is_empty() {
        return 0.0;
    }
    let n = per_dim.len() as f64;
    per_dim.iter().map(|iv| busy_length(iv) as f64 / window as f64).sum::<f64>() / n
}

fn merged(intervals: &[(Time, Time)]) -> Vec<(Time, Time)> {
    let mut v: Vec<(Time, Time)> = intervals.to_vec();
    v.sort_unstable();
    let mut out: Vec<(Time, Time)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Renders an ASCII Gantt chart of chunk-stage records — one row per
/// dimension, `width` character columns spanning `[0, makespan]`.
/// Reduce-Scatter stages print the chunk digit, All-Gather stages print a
/// letter (`a` = chunk 0), idle time prints `·` (the Fig. 9 bubbles).
pub fn render_gantt(records: &[StageRecord], n_dims: usize, width: usize) -> String {
    let makespan = records.iter().map(|r| r.end).max().unwrap_or(0);
    if makespan == 0 || width == 0 {
        return String::new();
    }
    let mut rows = vec![vec!['·'; width]; n_dims];
    for r in records {
        let c0 = (r.start as u128 * width as u128 / makespan as u128) as usize;
        let c1 = ((r.end as u128 * width as u128).div_ceil(makespan as u128) as usize).min(width);
        let glyph = if r.gather {
            (b'a' + (r.chunk % 26) as u8) as char
        } else {
            char::from_digit((r.chunk % 10) as u32, 10).unwrap_or('#')
        };
        for cell in rows[r.dim].iter_mut().take(c1).skip(c0) {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    for (d, row) in rows.iter().enumerate() {
        out.push_str(&format!("Dim{d} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_length_merges_overlaps() {
        assert_eq!(busy_length(&[(0, 10), (5, 15), (20, 25)]), 20);
        assert_eq!(busy_length(&[]), 0);
    }

    #[test]
    fn union_spans_all_dims() {
        let per_dim = vec![vec![(0u64, 10u64)], vec![(5, 20)], vec![]];
        assert_eq!(union_length(&per_dim), 20);
    }

    #[test]
    fn utilization_of_fully_busy_dims_is_one() {
        let per_dim = vec![vec![(0u64, 10u64)], vec![(0, 10)]];
        assert!((average_utilization(&per_dim) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_counts_idle_dims() {
        let per_dim = vec![vec![(0u64, 10u64)], vec![]];
        assert!((average_utilization(&per_dim) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(average_utilization(&[]), 0.0);
        let nothing: Vec<Vec<(Time, Time)>> = vec![vec![], vec![]];
        assert_eq!(average_utilization(&nothing), 0.0);
    }

    #[test]
    fn gantt_renders_rows_per_dim() {
        let records = vec![
            StageRecord { job: 0, chunk: 0, dim: 0, gather: false, start: 0, end: 50 },
            StageRecord { job: 0, chunk: 0, dim: 1, gather: true, start: 50, end: 100 },
        ];
        let g = render_gantt(&records, 2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Dim0 |00000"));
        assert!(lines[1].contains('a'));
    }
}
