//! # libra-sim
//!
//! A deterministic, event-driven simulator for multi-dimensional training
//! fabrics — the repo's substitute for ASTRA-sim, which the paper uses to
//! measure the training performance of LIBRA-designed networks (§V-A).
//!
//! What it models, and why that is sufficient for the paper's experiments:
//!
//! * **Chunked multi-rail collectives** ([`collective`]): every collective
//!   is split into chunks (64 per collective in the paper's setup) that
//!   pipeline through the 2N multi-rail stages; each network dimension is a
//!   FIFO bandwidth server. This reproduces the Fig. 8/9 behaviour —
//!   per-dimension busy timelines, scheduling bubbles, and bottleneck dims.
//! * **Training loops** ([`training`]): compute phases and collectives are
//!   sequenced per layer with or without TP/DP overlap (Fig. 5),
//!   yielding end-to-end iteration makespans.
//! * **Utilization statistics** ([`stats`]): per-dimension busy fractions
//!   and ASCII Gantt charts (Fig. 9/10).
//! * **Link-level execution** ([`linksim`]): runs synthesized (TACOS-style)
//!   schedules on arbitrary topology graphs for the Fig. 20 study.
//! * **Evaluation backend** ([`backend`]): adapts the chunk engine to
//!   `libra_core::eval::EvalBackend`, so design-space sweeps can
//!   cross-validate the analytical cost model against event-driven
//!   execution point by point.
//!
//! Determinism: time is integer picoseconds, every queue breaks ties by
//! insertion sequence, and no randomness exists anywhere in the crate —
//! identical inputs produce identical traces.

pub mod backend;
pub mod collective;
pub mod event;
pub mod linksim;
pub mod stats;
pub mod training;

pub use backend::{eval_plan_on_engine, register_backends, EventSimBackend};
pub use collective::{
    run_batch_ext, run_collective, BatchExt, ChunkScheduler, CollectiveResult, DimUsage,
    EngineScratch, FixedOrder, JobSpec, Trace,
};
pub use event::{ps_to_secs, secs_to_ps, transfer_with_latency_ps, Time};
pub use training::{simulate_training, TrainingResult, TrainingSimConfig};
