//! Training-loop execution: sequences per-layer compute and collectives
//! (paper Fig. 5) and measures the end-to-end iteration makespan.

use libra_core::workload::{CommOp, TrainingLoop, Workload};

use crate::collective::{run_batch, ChunkScheduler, CollectiveJob, FixedOrder};
use crate::event::{ps_to_secs, secs_to_ps, Time};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSimConfig {
    /// Chunks per collective (the paper's evaluation uses 64, §V-B).
    pub chunks_per_collective: usize,
    /// The training loop to execute.
    pub training_loop: TrainingLoop,
}

impl Default for TrainingSimConfig {
    fn default() -> Self {
        TrainingSimConfig { chunks_per_collective: 64, training_loop: TrainingLoop::NoOverlap }
    }
}

/// The simulated execution of one training iteration.
#[derive(Debug, Clone)]
pub struct TrainingResult {
    /// End-to-end iteration time (seconds).
    pub makespan: f64,
    /// Total busy time per network dimension (seconds).
    pub per_dim_busy_secs: Vec<f64>,
    /// Wall-clock during which at least one dimension was busy (seconds).
    pub comm_window_secs: f64,
    /// Total compute time in the workload (seconds).
    pub compute_secs: f64,
}

impl TrainingResult {
    /// Average network-bandwidth utilization: each dimension's busy fraction
    /// of the communication window, averaged over dimensions (Fig. 10's
    /// metric). A zero-dimensional result (no network at all) is 0, not
    /// NaN — the `0/0` a naive average would produce.
    pub fn average_utilization(&self) -> f64 {
        if self.comm_window_secs <= 0.0 || self.per_dim_busy_secs.is_empty() {
            return 0.0;
        }
        let n = self.per_dim_busy_secs.len() as f64;
        self.per_dim_busy_secs.iter().map(|b| b / self.comm_window_secs).sum::<f64>() / n
    }
}

fn job(op: &CommOp, chunks: usize, release: Time) -> CollectiveJob {
    CollectiveJob {
        collective: op.collective,
        bytes: op.bytes,
        span: op.span.clone(),
        chunks,
        release,
    }
}

/// Simulates one training iteration of `workload` on an `n_dims`-dimensional
/// network with per-dim bandwidth `bw`, using the canonical multi-rail
/// chunk order.
pub fn simulate_training(
    workload: &Workload,
    n_dims: usize,
    bw: &[f64],
    config: &TrainingSimConfig,
) -> TrainingResult {
    simulate_training_with(workload, n_dims, bw, config, &mut FixedOrder)
}

/// [`simulate_training`] with a custom chunk scheduler (e.g. Themis).
pub fn simulate_training_with(
    workload: &Workload,
    n_dims: usize,
    bw: &[f64],
    config: &TrainingSimConfig,
    scheduler: &mut dyn ChunkScheduler,
) -> TrainingResult {
    assert_eq!(bw.len(), n_dims);
    let chunks = config.chunks_per_collective;
    let mut t: Time = 0;
    let mut busy: Vec<Vec<(Time, Time)>> = vec![Vec::new(); n_dims];
    let absorb = |into: &mut Vec<Vec<(Time, Time)>>, from: Vec<Vec<(Time, Time)>>| {
        for (acc, nw) in into.iter_mut().zip(from) {
            acc.extend(nw);
        }
    };

    for layer in &workload.layers {
        t += secs_to_ps(layer.fwd_compute);
        if let Some(op) = &layer.fwd_comm {
            let res = run_batch(n_dims, bw, &[job(op, chunks, t)], scheduler);
            t = res.makespan().max(t);
            absorb(&mut busy, res.per_dim_busy);
        }
        t += secs_to_ps(layer.igrad_compute);
        match config.training_loop {
            TrainingLoop::NoOverlap => {
                if let Some(op) = &layer.tp_comm {
                    let res = run_batch(n_dims, bw, &[job(op, chunks, t)], scheduler);
                    t = res.makespan().max(t);
                    absorb(&mut busy, res.per_dim_busy);
                }
                t += secs_to_ps(layer.wgrad_compute);
                if let Some(op) = &layer.dp_comm {
                    let res = run_batch(n_dims, bw, &[job(op, chunks, t)], scheduler);
                    t = res.makespan().max(t);
                    absorb(&mut busy, res.per_dim_busy);
                }
            }
            TrainingLoop::TpDpOverlap => {
                // TP comm starts now; the DP branch computes weight grads
                // first, then its collective. The two contend on shared
                // dimensions, which run_batch models with shared servers.
                let dp_release = t + secs_to_ps(layer.wgrad_compute);
                let mut jobs: Vec<CollectiveJob> = Vec::new();
                if let Some(op) = &layer.tp_comm {
                    jobs.push(job(op, chunks, t));
                }
                if let Some(op) = &layer.dp_comm {
                    jobs.push(job(op, chunks, dp_release));
                }
                let branch_end = if jobs.is_empty() {
                    dp_release
                } else {
                    let res = run_batch(n_dims, bw, &jobs, scheduler);
                    let end = res.makespan();
                    absorb(&mut busy, res.per_dim_busy);
                    end.max(dp_release)
                };
                t = branch_end;
            }
        }
    }

    let per_dim_busy_secs: Vec<f64> =
        busy.iter().map(|iv| ps_to_secs(iv.iter().map(|(s, e)| e - s).sum::<Time>())).collect();
    let comm_window_secs = ps_to_secs(crate::stats::union_length(&busy));
    TrainingResult {
        makespan: ps_to_secs(t),
        per_dim_busy_secs,
        comm_window_secs,
        compute_secs: workload.total_compute(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::comm::{Collective, CommModel, GroupSpan};
    use libra_core::expr::BwExpr;
    use libra_core::time::estimate;
    use libra_core::workload::Layer;

    fn toy(n_layers: usize) -> Workload {
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let layer = Layer {
            name: "l".into(),
            fwd_compute: 0.01,
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 0.5e9, span.clone())),
            igrad_compute: 0.02,
            tp_comm: Some(CommOp::new(Collective::AllReduce, 1e9, span.clone())),
            wgrad_compute: 0.02,
            dp_comm: Some(CommOp::new(Collective::ReduceScatter, 2e9, span)),
        };
        Workload::new("toy", vec![layer; n_layers])
    }

    /// The simulator tracks the analytical estimator closely for the
    /// no-overlap loop (within pipeline-bubble error).
    #[test]
    fn matches_analytical_estimate_no_overlap() {
        let w = toy(4);
        let bw = [30.0, 10.0];
        let sim = simulate_training(&w, 2, &bw, &TrainingSimConfig::default());
        let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let analytic = expr.eval(&bw);
        assert!(sim.makespan >= analytic * 0.999, "{} vs {analytic}", sim.makespan);
        assert!(sim.makespan <= analytic * 1.10, "{} vs {analytic}", sim.makespan);
    }

    /// Overlap shortens the iteration, and never below the analytical
    /// overlap estimate.
    #[test]
    fn overlap_helps_and_respects_bound() {
        let w = toy(4);
        let bw = [30.0, 10.0];
        let no = simulate_training(
            &w,
            2,
            &bw,
            &TrainingSimConfig { training_loop: TrainingLoop::NoOverlap, ..Default::default() },
        );
        let ov = simulate_training(
            &w,
            2,
            &bw,
            &TrainingSimConfig { training_loop: TrainingLoop::TpDpOverlap, ..Default::default() },
        );
        assert!(ov.makespan < no.makespan);
        let expr = estimate(&w, TrainingLoop::TpDpOverlap, &CommModel::default());
        let analytic = expr.eval(&bw);
        assert!(ov.makespan >= analytic * 0.98, "{} vs {analytic}", ov.makespan);
    }

    /// A compute-only workload's makespan is exactly its compute time.
    #[test]
    fn compute_only_workload() {
        let w = Workload::new("c", vec![Layer::compute_only("l", 0.25, 0.25, 0.5)]);
        let sim = simulate_training(&w, 2, &[10.0, 10.0], &TrainingSimConfig::default());
        assert!((sim.makespan - 1.0).abs() < 1e-9);
        assert_eq!(sim.average_utilization(), 0.0);
        // The analytical compute floor agrees.
        let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        assert!((BwExpr::compute_floor(&expr) - 1.0).abs() < 1e-12);
    }

    /// Regression: a manually built result with no dimensions used to
    /// average over zero entries and return NaN (`0/0`); it must be 0.
    #[test]
    fn average_utilization_of_zero_dims_is_zero_not_nan() {
        let r = TrainingResult {
            makespan: 1.0,
            per_dim_busy_secs: vec![],
            comm_window_secs: 0.5, // nonzero window, nothing per-dim
            compute_secs: 0.5,
        };
        let u = r.average_utilization();
        assert!(!u.is_nan(), "average_utilization returned NaN for empty per_dim_busy_secs");
        assert_eq!(u, 0.0);
    }

    /// Better-balanced bandwidth raises utilization and lowers makespan.
    #[test]
    fn balanced_bw_beats_equal_bw() {
        let w = toy(4);
        // Traffic ratio dim0:dim1 for the toy spans is roughly 6:1, so a
        // 6:1 split should beat 1:1 at the same total.
        let eq = simulate_training(&w, 2, &[20.0, 20.0], &TrainingSimConfig::default());
        let opt = simulate_training(&w, 2, &[34.0, 6.0], &TrainingSimConfig::default());
        assert!(opt.makespan < eq.makespan);
        assert!(opt.average_utilization() > eq.average_utilization());
    }
}
