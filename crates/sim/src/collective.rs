//! Chunked multi-rail collective execution over per-dimension bandwidth
//! servers.
//!
//! Each network dimension is a FIFO server whose rate is that dimension's
//! per-NPU bandwidth. A collective is split into `chunks` equal chunks; an
//! All-Reduce chunk performs its Reduce-Scatter stages (one per spanned
//! dimension, payload shrinking by the extent after each), then All-Gather
//! stages in the exact reverse of its own RS order. Chunks pipeline: while
//! chunk 1 reduces on dim 2, chunk 2 can reduce on dim 1 — reproducing the
//! Fig. 9 timelines, including scheduling bubbles.
//!
//! The dimension-visit order is pluggable through [`ChunkScheduler`]:
//! [`FixedOrder`] implements the paper's canonical ascending multi-rail
//! order; the `libra-themis` crate provides the greedy bandwidth-aware
//! policy of the Fig. 19 study.
//!
//! [`run_batch_ext`] generalizes the engine with a [`BatchExt`]: per-
//! dimension α-β stage overheads (fixed picoseconds added to every stage's
//! service time — hop latency, switch traversal) and per-dimension
//! in-network offload flags (switch-resident reduction: a single ascending
//! pass carrying the §IV-C injection traffic, no All-Gather replay). The
//! `libra-net` network-layer backend drives the engine through this
//! surface; [`run_batch`] is the all-zero special case.

use std::collections::VecDeque;

use libra_core::comm::{Collective, GroupSpan};

use crate::event::{transfer_with_latency_ps, EventQueue, Time};

/// Per-dimension execution extensions for [`run_batch_ext`]: α-β stage
/// overheads and in-network (switch) offload flags. [`run_batch`] is the
/// all-zero special case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchExt {
    /// `stage_overhead_ps[d]`: fixed picoseconds added to every chunk-stage
    /// serviced on dimension `d` — the bandwidth-independent α side of the
    /// α-β model (hop latency × hop count, switch traversal). Missing
    /// entries (or an empty vec) mean zero overhead.
    pub stage_overhead_ps: Vec<Time>,
    /// `offload_dims[d]`: dimension `d` performs in-network reduction.
    /// Offloadable collectives (the All-Reduce family) cross it in a
    /// single ascending pass carrying `m_chunk / Π_{j<i} e_j` bytes — the
    /// paper's §IV-C offload traffic — and skip its All-Gather replay.
    /// All-to-All and point-to-point jobs are unaffected, mirroring
    /// `CommModel::traffic`'s offloadability rule. Missing entries mean
    /// endpoint-driven execution.
    pub offload_dims: Vec<bool>,
}

impl BatchExt {
    /// No overheads, no offload — [`run_batch`]'s behaviour.
    pub fn none() -> Self {
        BatchExt::default()
    }

    fn overhead(&self, dim: usize) -> Time {
        self.stage_overhead_ps.get(dim).copied().unwrap_or(0)
    }

    fn offloaded(&self, dim: usize) -> bool {
        self.offload_dims.get(dim).copied().unwrap_or(false)
    }
}

/// One stage option presented to a [`ChunkScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOption {
    /// Physical dimension index.
    pub dim: usize,
    /// Group extent along that dimension.
    pub extent: u64,
    /// Bytes this chunk would move through the dimension at this point.
    pub bytes: f64,
    /// When the dimension's server frees of all currently queued work.
    pub server_free_at: Time,
    /// The dimension's bandwidth (GB/s).
    pub bw_gbps: f64,
    /// Fixed per-stage overhead on this dimension (ps) — the α term a
    /// latency-aware scheduler should add to its service estimates.
    pub overhead_ps: Time,
    /// Whether visiting a dimension shrinks the payload carried into later
    /// dimensions (true for the Reduce-Scatter family, false for
    /// All-to-All). Schedulers use this to weigh visit orders.
    pub shrinks: bool,
}

/// Decides which dimension a chunk visits next during its Reduce-Scatter
/// (or flat) phase. All-Gather always replays the chunk's RS order in
/// reverse — that is a correctness requirement of the algorithm, not a
/// policy choice.
pub trait ChunkScheduler {
    /// Returns an index into `options` (clamped by the engine).
    fn choose(&mut self, chunk: usize, now: Time, options: &[StageOption]) -> usize;
}

/// The canonical multi-rail order: dimensions ascending (paper §II-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedOrder;

impl ChunkScheduler for FixedOrder {
    fn choose(&mut self, _chunk: usize, _now: Time, _options: &[StageOption]) -> usize {
        0 // `remaining` is kept in ascending dimension order
    }
}

/// One collective to execute.
#[derive(Debug, Clone)]
pub struct CollectiveJob {
    /// The collective pattern.
    pub collective: Collective,
    /// Total payload bytes per NPU.
    pub bytes: f64,
    /// The group span.
    pub span: GroupSpan,
    /// Number of pipelined chunks (the paper uses 64).
    pub chunks: usize,
    /// Simulation time at which the collective is released.
    pub release: Time,
}

/// A start/end record of one chunk-stage on one dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Job index within the batch.
    pub job: usize,
    /// Chunk index within the job.
    pub chunk: usize,
    /// Physical dimension served.
    pub dim: usize,
    /// `true` for All-Gather stages, `false` for Reduce-Scatter/flat stages.
    pub gather: bool,
    /// Service start (ps).
    pub start: Time,
    /// Service end (ps).
    pub end: Time,
}

/// The result of executing a batch of collectives on shared servers.
#[derive(Debug, Clone)]
pub struct CollectiveResult {
    /// Finish time of each job in the batch.
    pub finish: Vec<Time>,
    /// Busy intervals per physical dimension (sorted by start).
    pub per_dim_busy: Vec<Vec<(Time, Time)>>,
    /// Every chunk-stage service interval (Gantt source).
    pub records: Vec<StageRecord>,
}

impl CollectiveResult {
    /// The latest finish across jobs (batch makespan).
    pub fn makespan(&self) -> Time {
        self.finish.iter().copied().max().unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedStage {
    chunk_key: usize,
    bytes: f64,
    gather: bool,
}

#[derive(Debug)]
struct Server {
    bw_gbps: f64,
    overhead_ps: Time,
    free_at: Time,
    backlog_until: Time,
    queue: VecDeque<QueuedStage>,
    running: Option<usize>, // chunk key
    busy: Vec<(Time, Time)>,
}

#[derive(Debug)]
struct ChunkState {
    job: usize,
    chunk: usize,
    /// Remaining scatter-phase (dim, extent) stages, ascending dim order.
    remaining: Vec<(usize, u64)>,
    /// Scatter visit history `(dim, bytes)` in visit order; the gather half
    /// consumes it LIFO (reverse order).
    visited: Vec<(usize, f64)>,
    /// Whether the gather half has begun.
    gathering: bool,
    /// Product of extents already reduced over.
    shrink: f64,
    /// Chunk payload bytes.
    m_chunk: f64,
    /// Whether this collective has an All-Gather half (All-Reduce).
    has_gather: bool,
    /// Flat traffic rule (All-to-All): `m(e−1)/e`, no shrink accumulation.
    flat: bool,
    /// Full-payload rule (point-to-point): `m` on every spanned dim.
    full: bool,
    done: bool,
}

impl ChunkState {
    fn stage_bytes(&self, extent: u64, offloaded: bool) -> f64 {
        let e = extent as f64;
        if self.full {
            self.m_chunk
        } else if self.flat {
            self.m_chunk * (e - 1.0) / e
        } else if offloaded {
            // In-network reduction: the NPU only injects its current shard
            // (§IV-C) — the switch reduces and returns the result in-line.
            self.m_chunk / self.shrink
        } else {
            self.m_chunk * (e - 1.0) / (e * self.shrink)
        }
    }
}

enum Ev {
    Ready(usize), // chunk key
    Done(usize),  // dim
}

/// Executes a batch of collectives on shared per-dimension servers.
///
/// Jobs in the batch contend for bandwidth (used to model overlapped TP and
/// DP collectives); submit sequential phases as separate batches.
///
/// # Panics
/// Panics if `bw.len() < n_dims`, a spanned dimension has non-positive
/// bandwidth, or a non-trivial job has `chunks == 0`.
pub fn run_batch(
    n_dims: usize,
    bw: &[f64],
    jobs: &[CollectiveJob],
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    run_batch_ext(n_dims, bw, &BatchExt::none(), jobs, scheduler)
}

/// [`run_batch`] with per-dimension α-β stage overheads and in-network
/// offload flags (see [`BatchExt`]). This is the latency-carrying engine
/// the `libra-net` network-layer backend drives; with `BatchExt::none()`
/// it is byte-for-byte [`run_batch`].
///
/// # Panics
/// See [`run_batch`].
pub fn run_batch_ext(
    n_dims: usize,
    bw: &[f64],
    ext: &BatchExt,
    jobs: &[CollectiveJob],
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    assert!(bw.len() >= n_dims, "bandwidth vector shorter than dimensionality");
    let mut servers: Vec<Server> = (0..n_dims)
        .map(|d| Server {
            bw_gbps: bw[d],
            overhead_ps: ext.overhead(d),
            free_at: 0,
            backlog_until: 0,
            queue: VecDeque::new(),
            running: None,
            busy: Vec::new(),
        })
        .collect();

    let mut chunks: Vec<ChunkState> = Vec::new();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut finish: Vec<Time> = jobs.iter().map(|j| j.release).collect();
    let mut outstanding: Vec<usize> = vec![0; jobs.len()];

    for (ji, job) in jobs.iter().enumerate() {
        if job.span.is_trivial() || job.bytes <= 0.0 {
            continue;
        }
        assert!(job.chunks > 0, "collective must have at least one chunk");
        for &(d, _) in job.span.extents() {
            assert!(bw[d] > 0.0, "dimension {d} has non-positive bandwidth");
        }
        let m_chunk = job.bytes / job.chunks as f64;
        for c in 0..job.chunks {
            let key = chunks.len();
            let mut st = ChunkState {
                job: ji,
                chunk: c,
                remaining: job.span.extents().to_vec(),
                visited: Vec::new(),
                gathering: false,
                shrink: 1.0,
                m_chunk,
                has_gather: job.collective == Collective::AllReduce,
                flat: job.collective == Collective::AllToAll,
                full: job.collective == Collective::PointToPoint,
                done: false,
            };
            if job.collective == Collective::AllGather {
                // All-Gather-only: precompute the Reduce-Scatter-shaped
                // sizes in ascending order; LIFO consumption yields the
                // canonical descending execution. Offloaded dims carry the
                // §IV-C injection traffic instead.
                let mut shrink = 1.0f64;
                for &(d, e) in &st.remaining {
                    let e_f = e as f64;
                    let bytes = if ext.offloaded(d) {
                        m_chunk / shrink
                    } else {
                        m_chunk * (e_f - 1.0) / (e_f * shrink)
                    };
                    st.visited.push((d, bytes));
                    shrink *= e_f;
                }
                st.remaining.clear();
                st.gathering = true;
            }
            chunks.push(st);
            outstanding[ji] += 1;
            queue.push(job.release, Ev::Ready(key));
        }
    }

    let mut records: Vec<StageRecord> = Vec::new();

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Ready(key) => {
                match next_stage(&mut chunks[key], &servers, scheduler, now, key, ext) {
                    Some((dim, bytes, gather)) => {
                        let dur = transfer_with_latency_ps(
                            bytes,
                            servers[dim].bw_gbps,
                            servers[dim].overhead_ps,
                        );
                        let s = &mut servers[dim];
                        s.backlog_until = s.backlog_until.max(now).saturating_add(dur);
                        s.queue.push_back(QueuedStage { chunk_key: key, bytes, gather });
                        try_start(dim, &mut servers[dim], now, &mut queue, &chunks, &mut records);
                    }
                    None => {
                        let st = &mut chunks[key];
                        if !st.done {
                            st.done = true;
                            outstanding[st.job] -= 1;
                            if outstanding[st.job] == 0 {
                                finish[st.job] = now;
                            }
                        }
                    }
                }
            }
            Ev::Done(dim) => {
                if let Some(key) = servers[dim].running.take() {
                    queue.push(now, Ev::Ready(key));
                }
                try_start(dim, &mut servers[dim], now, &mut queue, &chunks, &mut records);
            }
        }
    }

    let per_dim_busy: Vec<Vec<(Time, Time)>> = servers.into_iter().map(|s| s.busy).collect();
    CollectiveResult { finish, per_dim_busy, records }
}

/// Picks the chunk's next stage: `(dim, bytes, is_gather)`, or `None` when
/// finished.
fn next_stage(
    st: &mut ChunkState,
    servers: &[Server],
    scheduler: &mut dyn ChunkScheduler,
    now: Time,
    key: usize,
    ext: &BatchExt,
) -> Option<(usize, f64, bool)> {
    if !st.gathering {
        if let Some(pick) = pick_scatter(st, servers, scheduler, now, key, ext) {
            return Some(pick);
        }
        // Scatter phase exhausted.
        if st.has_gather && !st.visited.is_empty() {
            st.gathering = true;
        } else if !st.gathering {
            return None;
        }
    }
    // Gather: consume the visit history LIFO (reverse order).
    st.visited.pop().map(|(d, b)| (d, b, true))
}

fn pick_scatter(
    st: &mut ChunkState,
    servers: &[Server],
    scheduler: &mut dyn ChunkScheduler,
    now: Time,
    key: usize,
    ext: &BatchExt,
) -> Option<(usize, f64, bool)> {
    if st.remaining.is_empty() {
        return None;
    }
    let options: Vec<StageOption> = st
        .remaining
        .iter()
        .map(|&(d, e)| StageOption {
            dim: d,
            extent: e,
            bytes: st.stage_bytes(e, ext.offloaded(d)),
            server_free_at: servers[d].backlog_until,
            bw_gbps: servers[d].bw_gbps,
            overhead_ps: servers[d].overhead_ps,
            shrinks: !st.flat && !st.full,
        })
        .collect();
    // The scheduler receives the batch-unique chunk key so stateful
    // policies can track per-chunk plans across jobs.
    let pick = scheduler.choose(key, now, &options).min(options.len() - 1);
    let (d, e) = st.remaining.remove(pick);
    let offloaded = ext.offloaded(d);
    let bytes = st.stage_bytes(e, offloaded);
    // All-Reduce remembers its visit order for the gather half — except on
    // offloaded dims, whose switch returns the reduced result in the same
    // pass (no All-Gather replay). Flat collectives don't gather, but
    // recording costs nothing.
    if st.has_gather && !offloaded {
        st.visited.push((d, bytes));
    }
    if !st.flat && !st.full {
        st.shrink *= e as f64;
    }
    Some((d, bytes, false))
}

/// Starts the server's next queued stage if it is idle.
fn try_start(
    dim: usize,
    s: &mut Server,
    now: Time,
    queue: &mut EventQueue<Ev>,
    chunks: &[ChunkState],
    records: &mut Vec<StageRecord>,
) {
    if s.running.is_some() {
        return;
    }
    let Some(job) = s.queue.pop_front() else { return };
    let start = now.max(s.free_at);
    let end = start.saturating_add(transfer_with_latency_ps(job.bytes, s.bw_gbps, s.overhead_ps));
    s.free_at = end;
    s.running = Some(job.chunk_key);
    s.busy.push((start, end));
    let st = &chunks[job.chunk_key];
    records.push(StageRecord { job: st.job, chunk: st.chunk, dim, gather: job.gather, start, end });
    queue.push(end, Ev::Done(dim));
}

/// Convenience wrapper: runs a single collective from time 0 with the given
/// scheduler.
pub fn run_collective(
    n_dims: usize,
    bw: &[f64],
    collective: Collective,
    bytes: f64,
    span: &GroupSpan,
    chunks: usize,
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    run_batch(
        n_dims,
        bw,
        &[CollectiveJob { collective, bytes, span: span.clone(), chunks, release: 0 }],
        scheduler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ps_to_secs;
    use libra_core::comm::traffic_per_dim;

    fn span2() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 8)])
    }

    /// With many chunks the simulated makespan converges to the analytical
    /// bottleneck `max_i traffic_i / B_i` (plus the pipeline-fill bubble).
    #[test]
    fn converges_to_analytical_bottleneck() {
        let bw = [60.0, 20.0];
        let bytes = 8e9;
        let span = span2();
        let res = run_collective(2, &bw, Collective::AllReduce, bytes, &span, 64, &mut FixedOrder);
        let analytic: f64 = traffic_per_dim(Collective::AllReduce, bytes, &span)
            .iter()
            .map(|&(d, t)| t / 1e9 / bw[d])
            .fold(0.0, f64::max);
        let sim = ps_to_secs(res.makespan());
        assert!(sim >= analytic * 0.999, "sim {sim} < analytic {analytic}");
        assert!(
            sim <= analytic * 1.15,
            "sim {sim} should be within pipeline-bubble distance of {analytic}"
        );
    }

    /// One chunk, 2D All-Reduce: the chunk serializes through 4 stages
    /// (RS d0, RS d1, AG d1, AG d0) with exact durations.
    #[test]
    fn single_chunk_exact_schedule() {
        let bw = [10.0, 10.0];
        let bytes = 4e9;
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let res = run_collective(2, &bw, Collective::AllReduce, bytes, &span, 1, &mut FixedOrder);
        // RS d0: 4·(3/4) = 3 GB → 0.3 s; RS d1: 4·(1/2)/4 = 0.5 GB → 0.05 s;
        // AG mirrors: 0.05 + 0.3. Total 0.7 s.
        assert!((ps_to_secs(res.makespan()) - 0.7).abs() < 1e-9);
        // Both dims saw exactly two service intervals.
        assert_eq!(res.per_dim_busy[0].len(), 2);
        assert_eq!(res.per_dim_busy[1].len(), 2);
        // Stage order: RS d0, RS d1, AG d1, AG d0.
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false), (1, true), (0, true)]);
    }

    /// Reduce-Scatter is exactly half an All-Reduce for one chunk.
    #[test]
    fn reduce_scatter_is_half_allreduce() {
        let bw = [10.0, 10.0];
        let span = span2();
        let ar = run_collective(2, &bw, Collective::AllReduce, 2e9, &span, 1, &mut FixedOrder);
        let rs = run_collective(2, &bw, Collective::ReduceScatter, 2e9, &span, 1, &mut FixedOrder);
        assert_eq!(ar.makespan(), 2 * rs.makespan());
    }

    /// All-Gather equals Reduce-Scatter in duration (mirror image) and runs
    /// dims in descending order.
    #[test]
    fn allgather_mirrors_reduce_scatter() {
        let bw = [25.0, 5.0];
        let span = span2();
        let rs = run_collective(2, &bw, Collective::ReduceScatter, 2e9, &span, 8, &mut FixedOrder);
        let ag = run_collective(2, &bw, Collective::AllGather, 2e9, &span, 8, &mut FixedOrder);
        assert_eq!(rs.makespan(), ag.makespan());
        // First AG record of chunk 0 is the outermost dim.
        let first = ag.records.iter().find(|r| r.chunk == 0).unwrap();
        assert_eq!(first.dim, 1);
        assert!(first.gather);
    }

    /// All-to-All carries `m(e−1)/e` per dim with no shrink.
    #[test]
    fn alltoall_single_chunk() {
        let bw = [10.0, 10.0];
        let span = span2();
        let res = run_collective(2, &bw, Collective::AllToAll, 4e9, &span, 1, &mut FixedOrder);
        // d0: 4·(3/4)=3 GB → 0.3 s; d1: 4·(7/8)=3.5 GB → 0.35 s; serial 0.65.
        assert!((ps_to_secs(res.makespan()) - 0.65).abs() < 1e-9);
    }

    /// Trivial jobs finish instantly at their release time.
    #[test]
    fn trivial_span_finishes_at_release() {
        let res = run_batch(
            2,
            &[10.0, 10.0],
            &[CollectiveJob {
                collective: Collective::AllReduce,
                bytes: 1e9,
                span: GroupSpan::new(vec![]),
                chunks: 4,
                release: 123,
            }],
            &mut FixedOrder,
        );
        assert_eq!(res.finish, vec![123]);
    }

    /// Determinism: identical inputs give identical traces.
    #[test]
    fn deterministic_replay() {
        let bw = [33.0, 11.0];
        let span = span2();
        let a = run_collective(2, &bw, Collective::AllReduce, 3e9, &span, 16, &mut FixedOrder);
        let b = run_collective(2, &bw, Collective::AllReduce, 3e9, &span, 16, &mut FixedOrder);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.per_dim_busy, b.per_dim_busy);
        assert_eq!(a.records, b.records);
    }

    /// Two overlapped jobs on the same dimension contend for bandwidth.
    #[test]
    fn overlapping_jobs_contend() {
        let span = GroupSpan::new(vec![(0, 4)]);
        let job = |release| CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 1e9,
            span: span.clone(),
            chunks: 4,
            release,
        };
        let one = run_batch(1, &[10.0], &[job(0)], &mut FixedOrder);
        let two = run_batch(1, &[10.0], &[job(0), job(0)], &mut FixedOrder);
        assert!(two.makespan() > one.makespan());
        assert!((two.makespan() as f64 / one.makespan() as f64 - 2.0).abs() < 0.1);
    }

    /// Pipelining overlaps dim-0 and dim-1 work: many chunks finish faster
    /// than one serial chunk.
    #[test]
    fn chunks_pipeline_across_dims() {
        let bw = [10.0, 10.0];
        let span = span2();
        let serial = run_collective(2, &bw, Collective::AllReduce, 8e9, &span, 1, &mut FixedOrder);
        let piped = run_collective(2, &bw, Collective::AllReduce, 8e9, &span, 64, &mut FixedOrder);
        assert!(piped.makespan() < serial.makespan());
    }

    /// `run_batch_ext` with the empty extension is byte-for-byte
    /// `run_batch`.
    #[test]
    fn empty_ext_matches_run_batch() {
        let bw = [33.0, 11.0];
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 3e9,
            span: span2(),
            chunks: 16,
            release: 0,
        };
        let plain = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let ext = run_batch_ext(2, &bw, &BatchExt::none(), &[job], &mut FixedOrder);
        assert_eq!(plain.finish, ext.finish);
        assert_eq!(plain.records, ext.records);
    }

    /// Per-dimension stage overhead delays every stage serviced on that
    /// dimension: a single chunk's serial schedule grows by exactly
    /// (#stages on dim) × overhead.
    #[test]
    fn stage_overhead_extends_every_stage() {
        let bw = [10.0, 10.0];
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let alpha: Time = 1_000_000; // 1 µs per stage on dim 0 only
        let ext = BatchExt { stage_overhead_ps: vec![alpha, 0], offload_dims: vec![] };
        let base = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let slow = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // The serial chunk visits dim 0 twice (RS + AG).
        assert_eq!(slow.makespan(), base.makespan() + 2 * alpha);
    }

    /// Offloaded dims carry the §IV-C injection traffic in a single pass:
    /// a fully offloaded All-Reduce has ndims stages per chunk (no gather
    /// half) with bytes `m_chunk / Π_{j<i} e_j`.
    #[test]
    fn offloaded_allreduce_single_pass_traffic() {
        let bw = [10.0, 10.0];
        let span = span2(); // (0,4), (1,8)
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // Stages: dim0 injects m = 4 GB (0.4 s), dim1 injects m/4 = 1 GB
        // (0.1 s); no All-Gather replay. Serial chunk: 0.5 s.
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false)]);
        assert!((ps_to_secs(res.makespan()) - 0.5).abs() < 1e-9);
    }

    /// Mixed offload: only the offloaded dim skips its gather replay; the
    /// endpoint-driven dim still mirrors.
    #[test]
    fn mixed_offload_keeps_endpoint_gather() {
        let bw = [10.0, 10.0];
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![false, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // RS dim0 (3 GB), offloaded dim1 (m/4 = 1 GB), AG dim0 (3 GB).
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false), (0, true)]);
        assert!((ps_to_secs(res.makespan()) - 0.7).abs() < 1e-9);
    }

    /// All-to-All never offloads (it has nothing to reduce in-network),
    /// matching `CommModel::traffic`'s offloadability rule.
    #[test]
    fn alltoall_ignores_offload_flags() {
        let bw = [10.0, 10.0];
        let job = CollectiveJob {
            collective: Collective::AllToAll,
            bytes: 4e9,
            span: span2(),
            chunks: 4,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let plain = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let off = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        assert_eq!(plain.finish, off.finish);
        assert_eq!(plain.records, off.records);
    }

    /// Offloaded All-Gather carries `m/shrink` per dim (descending order
    /// preserved).
    #[test]
    fn offloaded_allgather_uses_injection_traffic() {
        let bw = [10.0, 10.0];
        let span = span2(); // (0,4), (1,8)
        let job = CollectiveJob {
            collective: Collective::AllGather,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // Descending: dim1 m/4 = 1 GB (0.1 s), then dim0 m = 4 GB (0.4 s).
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(1, true), (0, true)]);
        assert!((ps_to_secs(res.makespan()) - 0.5).abs() < 1e-9);
    }

    /// A release offset delays the whole collective.
    #[test]
    fn release_time_shifts_schedule() {
        let span = GroupSpan::new(vec![(0, 4)]);
        let mk = |release| {
            run_batch(
                1,
                &[10.0],
                &[CollectiveJob {
                    collective: Collective::ReduceScatter,
                    bytes: 1e9,
                    span: span.clone(),
                    chunks: 2,
                    release,
                }],
                &mut FixedOrder,
            )
        };
        let a = mk(0);
        let b = mk(1_000_000);
        assert_eq!(b.makespan(), a.makespan() + 1_000_000);
    }
}
