//! Chunked multi-rail collective execution over per-dimension bandwidth
//! servers.
//!
//! Each network dimension is a FIFO server whose rate is that dimension's
//! per-NPU bandwidth. A collective is split into `chunks` equal chunks; an
//! All-Reduce chunk performs its Reduce-Scatter stages (one per spanned
//! dimension, payload shrinking by the extent after each), then All-Gather
//! stages in the exact reverse of its own RS order. Chunks pipeline: while
//! chunk 1 reduces on dim 2, chunk 2 can reduce on dim 1 — reproducing the
//! Fig. 9 timelines, including scheduling bubbles.
//!
//! The dimension-visit order is pluggable through [`ChunkScheduler`]:
//! [`FixedOrder`] implements the paper's canonical ascending multi-rail
//! order; the `libra-themis` crate provides the greedy bandwidth-aware
//! policy of the Fig. 19 study.
//!
//! [`run_batch_ext`] generalizes the engine with a [`BatchExt`]: per-
//! dimension α-β stage overheads (fixed picoseconds added to every stage's
//! service time — hop latency, switch traversal) and per-dimension
//! in-network offload flags (switch-resident reduction: a single ascending
//! pass carrying the §IV-C injection traffic, no All-Gather replay). The
//! `libra-net` network-layer backend drives the engine through this
//! surface; [`run_batch`] is the all-zero special case.
//!
//! # The allocation-free fast path
//!
//! Design-space sweeps price the same plan shapes millions of times, so the
//! engine is split into a reusable arena ([`EngineScratch`]) plus a trace
//! switch ([`Trace`]):
//!
//! * [`EngineScratch::run_jobs`] executes a batch **without allocating**
//!   once the arena has warmed up: chunk states live in a slab, their
//!   remaining/visited stage lists in two flat buffers, server queues and
//!   the event heap are reused, and jobs are fed as borrowed [`JobSpec`]s
//!   (no `GroupSpan` clones anywhere in the fan-out).
//! * [`Trace::Off`] (the fast path) skips [`StageRecord`] collection and
//!   per-transfer busy-interval pushes entirely; per-dimension utilization
//!   survives as an O(1) [`DimUsage`] accumulator (total busy time + span
//!   ends + stage count). [`Trace::Full`] restores the Gantt-grade
//!   instrumentation.
//!
//! Both paths share one event loop, so their finish times are **bit
//! identical** — the repo's determinism suite (`tests/engine_determinism.rs`)
//! pins this on the golden timelines and a 60-point cross-validated sweep.
//! The classic [`run_batch`]/[`run_batch_ext`]/[`run_collective`] entry
//! points are the `Trace::Full` case on a fresh arena and behave exactly as
//! they always did.

use std::collections::VecDeque;

use libra_core::comm::{Collective, GroupSpan};

use crate::event::{transfer_with_latency_ps, EventQueue, Time};

/// Per-dimension execution extensions for [`run_batch_ext`]: α-β stage
/// overheads and in-network (switch) offload flags. [`run_batch`] is the
/// all-zero special case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchExt {
    /// `stage_overhead_ps[d]`: fixed picoseconds added to every chunk-stage
    /// serviced on dimension `d` — the bandwidth-independent α side of the
    /// α-β model (hop latency × hop count, switch traversal). Missing
    /// entries (or an empty vec) mean zero overhead.
    pub stage_overhead_ps: Vec<Time>,
    /// `offload_dims[d]`: dimension `d` performs in-network reduction.
    /// Offloadable collectives (the All-Reduce family) cross it in a
    /// single ascending pass carrying `m_chunk / Π_{j<i} e_j` bytes — the
    /// paper's §IV-C offload traffic — and skip its All-Gather replay.
    /// All-to-All and point-to-point jobs are unaffected, mirroring
    /// `CommModel::traffic`'s offloadability rule. Missing entries mean
    /// endpoint-driven execution.
    pub offload_dims: Vec<bool>,
}

impl BatchExt {
    /// No overheads, no offload — [`run_batch`]'s behaviour.
    pub fn none() -> Self {
        BatchExt::default()
    }

    /// Empties both extension vectors, keeping their allocations (used by
    /// the backends' per-phase extension reuse).
    pub fn clear(&mut self) {
        self.stage_overhead_ps.clear();
        self.offload_dims.clear();
    }

    fn overhead(&self, dim: usize) -> Time {
        self.stage_overhead_ps.get(dim).copied().unwrap_or(0)
    }

    fn offloaded(&self, dim: usize) -> bool {
        self.offload_dims.get(dim).copied().unwrap_or(false)
    }
}

/// One stage option presented to a [`ChunkScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOption {
    /// Physical dimension index.
    pub dim: usize,
    /// Group extent along that dimension.
    pub extent: u64,
    /// Bytes this chunk would move through the dimension at this point.
    pub bytes: f64,
    /// When the dimension's server frees of all currently queued work.
    pub server_free_at: Time,
    /// The dimension's bandwidth (GB/s).
    pub bw_gbps: f64,
    /// Fixed per-stage overhead on this dimension (ps) — the α term a
    /// latency-aware scheduler should add to its service estimates.
    pub overhead_ps: Time,
    /// Whether visiting a dimension shrinks the payload carried into later
    /// dimensions (true for the Reduce-Scatter family, false for
    /// All-to-All). Schedulers use this to weigh visit orders.
    pub shrinks: bool,
}

/// Decides which dimension a chunk visits next during its Reduce-Scatter
/// (or flat) phase. All-Gather always replays the chunk's RS order in
/// reverse — that is a correctness requirement of the algorithm, not a
/// policy choice.
pub trait ChunkScheduler {
    /// Returns an index into `options` (clamped by the engine).
    fn choose(&mut self, chunk: usize, now: Time, options: &[StageOption]) -> usize;

    /// Whether the scheduler inspects [`StageOption`]s at all. Policies
    /// that always pick index 0 ([`FixedOrder`]) return `false`, letting
    /// the engine skip option construction on the hot path — the engine
    /// then never calls [`ChunkScheduler::choose`].
    fn needs_options(&self) -> bool {
        true
    }
}

/// The canonical multi-rail order: dimensions ascending (paper §II-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedOrder;

impl ChunkScheduler for FixedOrder {
    fn choose(&mut self, _chunk: usize, _now: Time, _options: &[StageOption]) -> usize {
        0 // `remaining` is kept in ascending dimension order
    }

    fn needs_options(&self) -> bool {
        false
    }
}

/// One collective to execute (owned form; see [`JobSpec`] for the borrowed
/// form the allocation-free path consumes).
#[derive(Debug, Clone)]
pub struct CollectiveJob {
    /// The collective pattern.
    pub collective: Collective,
    /// Total payload bytes per NPU.
    pub bytes: f64,
    /// The group span.
    pub span: GroupSpan,
    /// Number of pipelined chunks (the paper uses 64).
    pub chunks: usize,
    /// Simulation time at which the collective is released.
    pub release: Time,
}

/// A borrowed collective job: what [`EngineScratch::run_jobs`] actually
/// consumes. Borrowing the span is what lets plan evaluators feed the
/// engine without cloning a `GroupSpan` per operation per call.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec<'a> {
    /// The collective pattern.
    pub collective: Collective,
    /// Total payload bytes per NPU.
    pub bytes: f64,
    /// The group span (borrowed).
    pub span: &'a GroupSpan,
    /// Number of pipelined chunks.
    pub chunks: usize,
    /// Simulation time at which the collective is released.
    pub release: Time,
}

impl<'a> From<&'a CollectiveJob> for JobSpec<'a> {
    fn from(j: &'a CollectiveJob) -> Self {
        JobSpec {
            collective: j.collective,
            bytes: j.bytes,
            span: &j.span,
            chunks: j.chunks,
            release: j.release,
        }
    }
}

/// What the engine records beyond job finish times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trace {
    /// Fast path: no [`StageRecord`]s, no per-transfer busy intervals.
    /// Per-dimension utilization is still available through the O(1)
    /// [`DimUsage`] accumulators.
    #[default]
    Off,
    /// Full instrumentation: every chunk-stage interval is recorded (Gantt
    /// rendering, golden-timeline tests) and per-dimension busy intervals
    /// are kept.
    Full,
}

/// A start/end record of one chunk-stage on one dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Job index within the batch.
    pub job: usize,
    /// Chunk index within the job.
    pub chunk: usize,
    /// Physical dimension served.
    pub dim: usize,
    /// `true` for All-Gather stages, `false` for Reduce-Scatter/flat stages.
    pub gather: bool,
    /// Service start (ps).
    pub start: Time,
    /// Service end (ps).
    pub end: Time,
}

/// O(1) per-dimension service accumulator maintained on **every** path
/// (the fast path's replacement for the unbounded per-transfer interval
/// vector): total busy time plus the service span's end points. Because a
/// FIFO server never overlaps its own service intervals, `busy_ps` is
/// exact, not an approximation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimUsage {
    /// Total service time on this dimension (ps).
    pub busy_ps: Time,
    /// Start of the first service interval (0 when the dim never served).
    pub first_start: Time,
    /// End of the last service interval (0 when the dim never served).
    pub last_end: Time,
    /// Number of chunk-stages serviced.
    pub stages: usize,
}

impl DimUsage {
    /// Busy fraction of the dimension within `window` picoseconds
    /// (0 for an empty window).
    pub fn utilization_in(&self, window: Time) -> f64 {
        if window == 0 {
            return 0.0;
        }
        self.busy_ps as f64 / window as f64
    }
}

/// The result of executing a batch of collectives on shared servers.
#[derive(Debug, Clone)]
pub struct CollectiveResult {
    /// Finish time of each job in the batch.
    pub finish: Vec<Time>,
    /// Busy intervals per physical dimension (sorted by start).
    pub per_dim_busy: Vec<Vec<(Time, Time)>>,
    /// Every chunk-stage service interval (Gantt source).
    pub records: Vec<StageRecord>,
}

impl CollectiveResult {
    /// The latest finish across jobs (batch makespan).
    pub fn makespan(&self) -> Time {
        self.finish.iter().copied().max().unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedStage {
    chunk_key: usize,
    bytes: f64,
    gather: bool,
}

#[derive(Debug, Default)]
struct Server {
    bw_gbps: f64,
    overhead_ps: Time,
    free_at: Time,
    backlog_until: Time,
    queue: VecDeque<QueuedStage>,
    running: Option<usize>, // chunk key
    usage: DimUsage,
    busy: Vec<(Time, Time)>, // Trace::Full only
}

/// Per-chunk state. Stage lists live in the scratch arena's flat buffers
/// (`rem_buf` / `vis_buf`), addressed by `(offset, len)` — a chunk owns a
/// fixed region of span-length capacity in each, so the fan-out performs
/// zero per-chunk allocations.
#[derive(Debug)]
struct ChunkState {
    job: usize,
    chunk: usize,
    /// Remaining scatter-phase stages: `rem_buf[rem_lo..rem_lo + rem_len]`,
    /// ascending dim order.
    rem_lo: usize,
    rem_len: usize,
    /// Scatter visit history `(dim, bytes)` in visit order:
    /// `vis_buf[vis_lo..vis_lo + vis_len]`; the gather half consumes it
    /// LIFO (reverse order).
    vis_lo: usize,
    vis_len: usize,
    /// Whether the gather half has begun.
    gathering: bool,
    /// Product of extents already reduced over.
    shrink: f64,
    /// Chunk payload bytes.
    m_chunk: f64,
    /// Whether this collective has an All-Gather half (All-Reduce).
    has_gather: bool,
    /// Flat traffic rule (All-to-All): `m(e−1)/e`, no shrink accumulation.
    flat: bool,
    /// Full-payload rule (point-to-point): `m` on every spanned dim.
    full: bool,
    done: bool,
}

impl ChunkState {
    fn stage_bytes(&self, extent: u64, offloaded: bool) -> f64 {
        let e = extent as f64;
        if self.full {
            self.m_chunk
        } else if self.flat {
            self.m_chunk * (e - 1.0) / e
        } else if offloaded {
            // In-network reduction: the NPU only injects its current shard
            // (§IV-C) — the switch reduces and returns the result in-line.
            self.m_chunk / self.shrink
        } else {
            self.m_chunk * (e - 1.0) / (e * self.shrink)
        }
    }
}

#[derive(Debug)]
enum Ev {
    Ready(usize), // chunk key
    Done(usize),  // dim
}

/// The engine's reusable arena: chunk slab, flat stage buffers, server
/// pool, option buffer, event heap, and result vectors. Create once, drive
/// [`EngineScratch::run_jobs`] arbitrarily often — after the first few runs
/// every buffer has reached steady-state capacity and execution performs
/// **zero heap allocations** (with `Trace::Off` and a scheduler that does
/// not request options).
#[derive(Debug, Default)]
pub struct EngineScratch {
    servers: Vec<Server>,
    chunks: Vec<ChunkState>,
    rem_buf: Vec<(usize, u64)>,
    vis_buf: Vec<(usize, f64)>,
    options: Vec<StageOption>,
    queue: EventQueue<Ev>,
    finish: Vec<Time>,
    outstanding: Vec<usize>,
    records: Vec<StageRecord>,
}

impl EngineScratch {
    /// An empty arena.
    pub fn new() -> Self {
        EngineScratch::default()
    }

    fn reset(&mut self, n_dims: usize, bw: &[f64], ext: &BatchExt) {
        self.servers.truncate(n_dims);
        while self.servers.len() < n_dims {
            self.servers.push(Server::default());
        }
        for (d, s) in self.servers.iter_mut().enumerate() {
            s.bw_gbps = bw[d];
            s.overhead_ps = ext.overhead(d);
            s.free_at = 0;
            s.backlog_until = 0;
            s.running = None;
            s.queue.clear();
            s.usage = DimUsage::default();
            s.busy.clear();
        }
        self.chunks.clear();
        self.rem_buf.clear();
        self.vis_buf.clear();
        self.options.clear();
        self.queue.clear();
        self.finish.clear();
        self.outstanding.clear();
        self.records.clear();
    }

    /// Executes a batch of collectives on shared per-dimension servers,
    /// returning the batch makespan. Finish times, usage accumulators and
    /// (under [`Trace::Full`]) stage records stay readable on the arena
    /// until the next run.
    ///
    /// Identical inputs produce results bit-identical to
    /// [`run_batch_ext`] — the two share one event loop; only the
    /// instrumentation differs.
    ///
    /// # Panics
    /// Panics if `bw.len() < n_dims`, a spanned dimension has non-positive
    /// bandwidth, or a non-trivial job has `chunks == 0`.
    pub fn run_jobs<'a>(
        &mut self,
        n_dims: usize,
        bw: &[f64],
        ext: &BatchExt,
        jobs: impl IntoIterator<Item = JobSpec<'a>>,
        scheduler: &mut dyn ChunkScheduler,
        trace: Trace,
    ) -> Time {
        assert!(bw.len() >= n_dims, "bandwidth vector shorter than dimensionality");
        self.reset(n_dims, bw, ext);
        let EngineScratch {
            servers,
            chunks,
            rem_buf,
            vis_buf,
            options,
            queue,
            finish,
            outstanding,
            records,
        } = self;

        for (ji, job) in jobs.into_iter().enumerate() {
            finish.push(job.release);
            outstanding.push(0);
            if job.span.is_trivial() || job.bytes <= 0.0 {
                continue;
            }
            assert!(job.chunks > 0, "collective must have at least one chunk");
            for &(d, _) in job.span.extents() {
                assert!(bw[d] > 0.0, "dimension {d} has non-positive bandwidth");
            }
            let extents = job.span.extents();
            let k = extents.len();
            let m_chunk = job.bytes / job.chunks as f64;
            for c in 0..job.chunks {
                let key = chunks.len();
                let mut st = ChunkState {
                    job: ji,
                    chunk: c,
                    rem_lo: rem_buf.len(),
                    rem_len: 0,
                    vis_lo: vis_buf.len(),
                    vis_len: 0,
                    gathering: false,
                    shrink: 1.0,
                    m_chunk,
                    has_gather: job.collective == Collective::AllReduce,
                    flat: job.collective == Collective::AllToAll,
                    full: job.collective == Collective::PointToPoint,
                    done: false,
                };
                if job.collective == Collective::AllGather {
                    // All-Gather-only: precompute the Reduce-Scatter-shaped
                    // sizes in ascending order; LIFO consumption yields the
                    // canonical descending execution. Offloaded dims carry
                    // the §IV-C injection traffic instead.
                    let mut shrink = 1.0f64;
                    for &(d, e) in extents {
                        let e_f = e as f64;
                        let bytes = if ext.offloaded(d) {
                            m_chunk / shrink
                        } else {
                            m_chunk * (e_f - 1.0) / (e_f * shrink)
                        };
                        vis_buf.push((d, bytes));
                        shrink *= e_f;
                    }
                    st.vis_len = k;
                    st.gathering = true;
                } else {
                    rem_buf.extend_from_slice(extents);
                    st.rem_len = k;
                    // Reserve this chunk's gather slots up front so later
                    // pushes never move another chunk's region.
                    vis_buf.resize(vis_buf.len() + k, (0, 0.0));
                }
                chunks.push(st);
                outstanding[ji] += 1;
                queue.push(job.release, Ev::Ready(key));
            }
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Ready(key) => {
                    match next_stage(
                        &mut chunks[key],
                        rem_buf,
                        vis_buf,
                        servers,
                        scheduler,
                        options,
                        now,
                        key,
                        ext,
                    ) {
                        Some((dim, bytes, gather)) => {
                            let s = &mut servers[dim];
                            let dur = transfer_with_latency_ps(bytes, s.bw_gbps, s.overhead_ps);
                            s.backlog_until = s.backlog_until.max(now).saturating_add(dur);
                            s.queue.push_back(QueuedStage { chunk_key: key, bytes, gather });
                            try_start(dim, s, now, queue, chunks, records, trace);
                        }
                        None => {
                            let st = &mut chunks[key];
                            if !st.done {
                                st.done = true;
                                outstanding[st.job] -= 1;
                                if outstanding[st.job] == 0 {
                                    finish[st.job] = now;
                                }
                            }
                        }
                    }
                }
                Ev::Done(dim) => {
                    if let Some(key) = servers[dim].running.take() {
                        queue.push(now, Ev::Ready(key));
                    }
                    try_start(dim, &mut servers[dim], now, queue, chunks, records, trace);
                }
            }
        }
        finish.iter().copied().max().unwrap_or(0)
    }

    /// Per-job finish times of the last run.
    pub fn finish_times(&self) -> &[Time] {
        &self.finish
    }

    /// Per-dimension service accumulators of the last run.
    pub fn dim_usages(&self) -> impl Iterator<Item = DimUsage> + '_ {
        self.servers.iter().map(|s| s.usage)
    }

    /// Stage records of the last run (empty under [`Trace::Off`]).
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Harvests the last run into an owned [`CollectiveResult`], moving the
    /// record and interval buffers out of the arena (they regrow on the
    /// next traced run). `per_dim_busy` is empty-per-dim under
    /// [`Trace::Off`].
    pub fn take_result(&mut self) -> CollectiveResult {
        CollectiveResult {
            finish: std::mem::take(&mut self.finish),
            per_dim_busy: self.servers.iter_mut().map(|s| std::mem::take(&mut s.busy)).collect(),
            records: std::mem::take(&mut self.records),
        }
    }
}

/// Executes a batch of collectives on shared per-dimension servers.
///
/// Jobs in the batch contend for bandwidth (used to model overlapped TP and
/// DP collectives); submit sequential phases as separate batches.
///
/// # Panics
/// Panics if `bw.len() < n_dims`, a spanned dimension has non-positive
/// bandwidth, or a non-trivial job has `chunks == 0`.
pub fn run_batch(
    n_dims: usize,
    bw: &[f64],
    jobs: &[CollectiveJob],
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    run_batch_ext(n_dims, bw, &BatchExt::none(), jobs, scheduler)
}

/// [`run_batch`] with per-dimension α-β stage overheads and in-network
/// offload flags (see [`BatchExt`]). This is the latency-carrying engine
/// the `libra-net` network-layer backend drives; with `BatchExt::none()`
/// it is byte-for-byte [`run_batch`].
///
/// This entry point always runs fully instrumented ([`Trace::Full`]) on a
/// fresh arena; hot paths that do not need the trace should hold an
/// [`EngineScratch`] and call [`EngineScratch::run_jobs`] instead.
///
/// # Panics
/// See [`run_batch`].
pub fn run_batch_ext(
    n_dims: usize,
    bw: &[f64],
    ext: &BatchExt,
    jobs: &[CollectiveJob],
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    let mut scratch = EngineScratch::new();
    scratch.run_jobs(n_dims, bw, ext, jobs.iter().map(JobSpec::from), scheduler, Trace::Full);
    scratch.take_result()
}

/// Picks the chunk's next stage: `(dim, bytes, is_gather)`, or `None` when
/// finished.
#[allow(clippy::too_many_arguments)] // engine-internal plumbing of disjoint arena fields
fn next_stage(
    st: &mut ChunkState,
    rem_buf: &mut [(usize, u64)],
    vis_buf: &mut [(usize, f64)],
    servers: &[Server],
    scheduler: &mut dyn ChunkScheduler,
    options: &mut Vec<StageOption>,
    now: Time,
    key: usize,
    ext: &BatchExt,
) -> Option<(usize, f64, bool)> {
    if !st.gathering {
        if let Some(pick) =
            pick_scatter(st, rem_buf, vis_buf, servers, scheduler, options, now, key, ext)
        {
            return Some(pick);
        }
        // Scatter phase exhausted.
        if st.has_gather && st.vis_len > 0 {
            st.gathering = true;
        } else if !st.gathering {
            return None;
        }
    }
    // Gather: consume the visit history LIFO (reverse order).
    if st.vis_len == 0 {
        return None;
    }
    st.vis_len -= 1;
    let (d, b) = vis_buf[st.vis_lo + st.vis_len];
    Some((d, b, true))
}

#[allow(clippy::too_many_arguments)] // engine-internal plumbing of disjoint arena fields
fn pick_scatter(
    st: &mut ChunkState,
    rem_buf: &mut [(usize, u64)],
    vis_buf: &mut [(usize, f64)],
    servers: &[Server],
    scheduler: &mut dyn ChunkScheduler,
    options: &mut Vec<StageOption>,
    now: Time,
    key: usize,
    ext: &BatchExt,
) -> Option<(usize, f64, bool)> {
    if st.rem_len == 0 {
        return None;
    }
    let lo = st.rem_lo;
    let len = st.rem_len;
    let pick = if scheduler.needs_options() {
        options.clear();
        options.extend(rem_buf[lo..lo + len].iter().map(|&(d, e)| StageOption {
            dim: d,
            extent: e,
            bytes: st.stage_bytes(e, ext.offloaded(d)),
            server_free_at: servers[d].backlog_until,
            bw_gbps: servers[d].bw_gbps,
            overhead_ps: servers[d].overhead_ps,
            shrinks: !st.flat && !st.full,
        }));
        // The scheduler receives the batch-unique chunk key so stateful
        // policies can track per-chunk plans across jobs.
        scheduler.choose(key, now, options).min(len - 1)
    } else {
        0 // FixedOrder: `remaining` is kept in ascending dimension order
    };
    let (d, e) = rem_buf[lo + pick];
    // Ordered removal within the chunk's slab region (span-length shift).
    rem_buf.copy_within(lo + pick + 1..lo + len, lo + pick);
    st.rem_len -= 1;
    let offloaded = ext.offloaded(d);
    let bytes = st.stage_bytes(e, offloaded);
    // All-Reduce remembers its visit order for the gather half — except on
    // offloaded dims, whose switch returns the reduced result in the same
    // pass (no All-Gather replay).
    if st.has_gather && !offloaded {
        vis_buf[st.vis_lo + st.vis_len] = (d, bytes);
        st.vis_len += 1;
    }
    if !st.flat && !st.full {
        st.shrink *= e as f64;
    }
    Some((d, bytes, false))
}

/// Starts the server's next queued stage if it is idle.
fn try_start(
    dim: usize,
    s: &mut Server,
    now: Time,
    queue: &mut EventQueue<Ev>,
    chunks: &[ChunkState],
    records: &mut Vec<StageRecord>,
    trace: Trace,
) {
    if s.running.is_some() {
        return;
    }
    let Some(job) = s.queue.pop_front() else { return };
    let start = now.max(s.free_at);
    let end = start.saturating_add(transfer_with_latency_ps(job.bytes, s.bw_gbps, s.overhead_ps));
    s.free_at = end;
    s.running = Some(job.chunk_key);
    s.usage.busy_ps = s.usage.busy_ps.saturating_add(end - start);
    if s.usage.stages == 0 {
        s.usage.first_start = start;
    }
    s.usage.last_end = s.usage.last_end.max(end);
    s.usage.stages += 1;
    if trace == Trace::Full {
        s.busy.push((start, end));
        let st = &chunks[job.chunk_key];
        records.push(StageRecord {
            job: st.job,
            chunk: st.chunk,
            dim,
            gather: job.gather,
            start,
            end,
        });
    }
    queue.push(end, Ev::Done(dim));
}

/// Convenience wrapper: runs a single collective from time 0 with the given
/// scheduler.
pub fn run_collective(
    n_dims: usize,
    bw: &[f64],
    collective: Collective,
    bytes: f64,
    span: &GroupSpan,
    chunks: usize,
    scheduler: &mut dyn ChunkScheduler,
) -> CollectiveResult {
    let mut scratch = EngineScratch::new();
    scratch.run_jobs(
        n_dims,
        bw,
        &BatchExt::none(),
        [JobSpec { collective, bytes, span, chunks, release: 0 }],
        scheduler,
        Trace::Full,
    );
    scratch.take_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ps_to_secs;
    use libra_core::comm::traffic_per_dim;

    fn span2() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 8)])
    }

    /// With many chunks the simulated makespan converges to the analytical
    /// bottleneck `max_i traffic_i / B_i` (plus the pipeline-fill bubble).
    #[test]
    fn converges_to_analytical_bottleneck() {
        let bw = [60.0, 20.0];
        let bytes = 8e9;
        let span = span2();
        let res = run_collective(2, &bw, Collective::AllReduce, bytes, &span, 64, &mut FixedOrder);
        let analytic: f64 = traffic_per_dim(Collective::AllReduce, bytes, &span)
            .iter()
            .map(|&(d, t)| t / 1e9 / bw[d])
            .fold(0.0, f64::max);
        let sim = ps_to_secs(res.makespan());
        assert!(sim >= analytic * 0.999, "sim {sim} < analytic {analytic}");
        assert!(
            sim <= analytic * 1.15,
            "sim {sim} should be within pipeline-bubble distance of {analytic}"
        );
    }

    /// One chunk, 2D All-Reduce: the chunk serializes through 4 stages
    /// (RS d0, RS d1, AG d1, AG d0) with exact durations.
    #[test]
    fn single_chunk_exact_schedule() {
        let bw = [10.0, 10.0];
        let bytes = 4e9;
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let res = run_collective(2, &bw, Collective::AllReduce, bytes, &span, 1, &mut FixedOrder);
        // RS d0: 4·(3/4) = 3 GB → 0.3 s; RS d1: 4·(1/2)/4 = 0.5 GB → 0.05 s;
        // AG mirrors: 0.05 + 0.3. Total 0.7 s.
        assert!((ps_to_secs(res.makespan()) - 0.7).abs() < 1e-9);
        // Both dims saw exactly two service intervals.
        assert_eq!(res.per_dim_busy[0].len(), 2);
        assert_eq!(res.per_dim_busy[1].len(), 2);
        // Stage order: RS d0, RS d1, AG d1, AG d0.
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false), (1, true), (0, true)]);
    }

    /// Reduce-Scatter is exactly half an All-Reduce for one chunk.
    #[test]
    fn reduce_scatter_is_half_allreduce() {
        let bw = [10.0, 10.0];
        let span = span2();
        let ar = run_collective(2, &bw, Collective::AllReduce, 2e9, &span, 1, &mut FixedOrder);
        let rs = run_collective(2, &bw, Collective::ReduceScatter, 2e9, &span, 1, &mut FixedOrder);
        assert_eq!(ar.makespan(), 2 * rs.makespan());
    }

    /// All-Gather equals Reduce-Scatter in duration (mirror image) and runs
    /// dims in descending order.
    #[test]
    fn allgather_mirrors_reduce_scatter() {
        let bw = [25.0, 5.0];
        let span = span2();
        let rs = run_collective(2, &bw, Collective::ReduceScatter, 2e9, &span, 8, &mut FixedOrder);
        let ag = run_collective(2, &bw, Collective::AllGather, 2e9, &span, 8, &mut FixedOrder);
        assert_eq!(rs.makespan(), ag.makespan());
        // First AG record of chunk 0 is the outermost dim.
        let first = ag.records.iter().find(|r| r.chunk == 0).unwrap();
        assert_eq!(first.dim, 1);
        assert!(first.gather);
    }

    /// All-to-All carries `m(e−1)/e` per dim with no shrink.
    #[test]
    fn alltoall_single_chunk() {
        let bw = [10.0, 10.0];
        let span = span2();
        let res = run_collective(2, &bw, Collective::AllToAll, 4e9, &span, 1, &mut FixedOrder);
        // d0: 4·(3/4)=3 GB → 0.3 s; d1: 4·(7/8)=3.5 GB → 0.35 s; serial 0.65.
        assert!((ps_to_secs(res.makespan()) - 0.65).abs() < 1e-9);
    }

    /// Trivial jobs finish instantly at their release time.
    #[test]
    fn trivial_span_finishes_at_release() {
        let res = run_batch(
            2,
            &[10.0, 10.0],
            &[CollectiveJob {
                collective: Collective::AllReduce,
                bytes: 1e9,
                span: GroupSpan::new(vec![]),
                chunks: 4,
                release: 123,
            }],
            &mut FixedOrder,
        );
        assert_eq!(res.finish, vec![123]);
    }

    /// Determinism: identical inputs give identical traces.
    #[test]
    fn deterministic_replay() {
        let bw = [33.0, 11.0];
        let span = span2();
        let a = run_collective(2, &bw, Collective::AllReduce, 3e9, &span, 16, &mut FixedOrder);
        let b = run_collective(2, &bw, Collective::AllReduce, 3e9, &span, 16, &mut FixedOrder);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.per_dim_busy, b.per_dim_busy);
        assert_eq!(a.records, b.records);
    }

    /// Two overlapped jobs on the same dimension contend for bandwidth.
    #[test]
    fn overlapping_jobs_contend() {
        let span = GroupSpan::new(vec![(0, 4)]);
        let job = |release| CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 1e9,
            span: span.clone(),
            chunks: 4,
            release,
        };
        let one = run_batch(1, &[10.0], &[job(0)], &mut FixedOrder);
        let two = run_batch(1, &[10.0], &[job(0), job(0)], &mut FixedOrder);
        assert!(two.makespan() > one.makespan());
        assert!((two.makespan() as f64 / one.makespan() as f64 - 2.0).abs() < 0.1);
    }

    /// Pipelining overlaps dim-0 and dim-1 work: many chunks finish faster
    /// than one serial chunk.
    #[test]
    fn chunks_pipeline_across_dims() {
        let bw = [10.0, 10.0];
        let span = span2();
        let serial = run_collective(2, &bw, Collective::AllReduce, 8e9, &span, 1, &mut FixedOrder);
        let piped = run_collective(2, &bw, Collective::AllReduce, 8e9, &span, 64, &mut FixedOrder);
        assert!(piped.makespan() < serial.makespan());
    }

    /// `run_batch_ext` with the empty extension is byte-for-byte
    /// `run_batch`.
    #[test]
    fn empty_ext_matches_run_batch() {
        let bw = [33.0, 11.0];
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 3e9,
            span: span2(),
            chunks: 16,
            release: 0,
        };
        let plain = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let ext = run_batch_ext(2, &bw, &BatchExt::none(), &[job], &mut FixedOrder);
        assert_eq!(plain.finish, ext.finish);
        assert_eq!(plain.records, ext.records);
    }

    /// Per-dimension stage overhead delays every stage serviced on that
    /// dimension: a single chunk's serial schedule grows by exactly
    /// (#stages on dim) × overhead.
    #[test]
    fn stage_overhead_extends_every_stage() {
        let bw = [10.0, 10.0];
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let alpha: Time = 1_000_000; // 1 µs per stage on dim 0 only
        let ext = BatchExt { stage_overhead_ps: vec![alpha, 0], offload_dims: vec![] };
        let base = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let slow = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // The serial chunk visits dim 0 twice (RS + AG).
        assert_eq!(slow.makespan(), base.makespan() + 2 * alpha);
    }

    /// Offloaded dims carry the §IV-C injection traffic in a single pass:
    /// a fully offloaded All-Reduce has ndims stages per chunk (no gather
    /// half) with bytes `m_chunk / Π_{j<i} e_j`.
    #[test]
    fn offloaded_allreduce_single_pass_traffic() {
        let bw = [10.0, 10.0];
        let span = span2(); // (0,4), (1,8)
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // Stages: dim0 injects m = 4 GB (0.4 s), dim1 injects m/4 = 1 GB
        // (0.1 s); no All-Gather replay. Serial chunk: 0.5 s.
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false)]);
        assert!((ps_to_secs(res.makespan()) - 0.5).abs() < 1e-9);
    }

    /// Mixed offload: only the offloaded dim skips its gather replay; the
    /// endpoint-driven dim still mirrors.
    #[test]
    fn mixed_offload_keeps_endpoint_gather() {
        let bw = [10.0, 10.0];
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![false, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // RS dim0 (3 GB), offloaded dim1 (m/4 = 1 GB), AG dim0 (3 GB).
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(0, false), (1, false), (0, true)]);
        assert!((ps_to_secs(res.makespan()) - 0.7).abs() < 1e-9);
    }

    /// All-to-All never offloads (it has nothing to reduce in-network),
    /// matching `CommModel::traffic`'s offloadability rule.
    #[test]
    fn alltoall_ignores_offload_flags() {
        let bw = [10.0, 10.0];
        let job = CollectiveJob {
            collective: Collective::AllToAll,
            bytes: 4e9,
            span: span2(),
            chunks: 4,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let plain = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let off = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        assert_eq!(plain.finish, off.finish);
        assert_eq!(plain.records, off.records);
    }

    /// Offloaded All-Gather carries `m/shrink` per dim (descending order
    /// preserved).
    #[test]
    fn offloaded_allgather_uses_injection_traffic() {
        let bw = [10.0, 10.0];
        let span = span2(); // (0,4), (1,8)
        let job = CollectiveJob {
            collective: Collective::AllGather,
            bytes: 4e9,
            span,
            chunks: 1,
            release: 0,
        };
        let ext = BatchExt { stage_overhead_ps: vec![], offload_dims: vec![true, true] };
        let res = run_batch_ext(2, &bw, &ext, &[job], &mut FixedOrder);
        // Descending: dim1 m/4 = 1 GB (0.1 s), then dim0 m = 4 GB (0.4 s).
        let seq: Vec<(usize, bool)> = res.records.iter().map(|r| (r.dim, r.gather)).collect();
        assert_eq!(seq, vec![(1, true), (0, true)]);
        assert!((ps_to_secs(res.makespan()) - 0.5).abs() < 1e-9);
    }

    /// A release offset delays the whole collective.
    #[test]
    fn release_time_shifts_schedule() {
        let span = GroupSpan::new(vec![(0, 4)]);
        let mk = |release| {
            run_batch(
                1,
                &[10.0],
                &[CollectiveJob {
                    collective: Collective::ReduceScatter,
                    bytes: 1e9,
                    span: span.clone(),
                    chunks: 2,
                    release,
                }],
                &mut FixedOrder,
            )
        };
        let a = mk(0);
        let b = mk(1_000_000);
        assert_eq!(b.makespan(), a.makespan() + 1_000_000);
    }

    /// The scratch fast path produces finish times bit-identical to the
    /// traced entry points, for every collective kind and extension.
    #[test]
    fn fast_path_is_bit_identical_to_trace_path() {
        let bw = [37.0, 13.0];
        let exts = [
            BatchExt::none(),
            BatchExt { stage_overhead_ps: vec![500, 1_000], offload_dims: vec![false, true] },
        ];
        let mut scratch = EngineScratch::new();
        for collective in [
            Collective::AllReduce,
            Collective::ReduceScatter,
            Collective::AllGather,
            Collective::AllToAll,
            Collective::PointToPoint,
        ] {
            for ext in &exts {
                let span = span2();
                let job = CollectiveJob { collective, bytes: 3e9, span, chunks: 16, release: 7 };
                let traced =
                    run_batch_ext(2, &bw, ext, std::slice::from_ref(&job), &mut FixedOrder);
                let ms = scratch.run_jobs(
                    2,
                    &bw,
                    ext,
                    [JobSpec::from(&job)],
                    &mut FixedOrder,
                    Trace::Off,
                );
                assert_eq!(ms, traced.makespan(), "{collective:?}");
                assert_eq!(scratch.finish_times(), traced.finish.as_slice(), "{collective:?}");
                assert!(scratch.records().is_empty(), "fast path must not collect records");
            }
        }
    }

    /// A reused arena gives the same answers as a fresh one — state never
    /// leaks between runs.
    #[test]
    fn scratch_reuse_is_stateless_across_runs() {
        let mut scratch = EngineScratch::new();
        let span_a = span2();
        let span_b = GroupSpan::new(vec![(0, 2), (1, 2), (2, 4)]);
        let job_a = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 2e9,
            span: span_a,
            chunks: 8,
            release: 0,
        };
        let job_b = CollectiveJob {
            collective: Collective::AllToAll,
            bytes: 5e9,
            span: span_b,
            chunks: 4,
            release: 3,
        };
        let bw3 = [10.0, 20.0, 30.0];
        // Interleave two different batches several times; each must match a
        // fresh engine every time (including a dimensionality change).
        for _ in 0..3 {
            let a = scratch.run_jobs(
                2,
                &bw3[..2],
                &BatchExt::none(),
                [JobSpec::from(&job_a)],
                &mut FixedOrder,
                Trace::Off,
            );
            assert_eq!(
                a,
                run_batch(2, &bw3[..2], std::slice::from_ref(&job_a), &mut FixedOrder).makespan()
            );
            let b = scratch.run_jobs(
                3,
                &bw3,
                &BatchExt::none(),
                [JobSpec::from(&job_b)],
                &mut FixedOrder,
                Trace::Off,
            );
            assert_eq!(
                b,
                run_batch(3, &bw3, std::slice::from_ref(&job_b), &mut FixedOrder).makespan()
            );
        }
    }

    /// The fast path's [`DimUsage`] accumulators agree with the trace
    /// path's interval vectors: same total busy time, same span ends, same
    /// stage count — without storing any interval.
    #[test]
    fn dim_usage_matches_trace_intervals() {
        let bw = [25.0, 5.0];
        let span = span2();
        let job = CollectiveJob {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span,
            chunks: 8,
            release: 0,
        };
        let traced = run_batch(2, &bw, std::slice::from_ref(&job), &mut FixedOrder);
        let mut scratch = EngineScratch::new();
        scratch.run_jobs(
            2,
            &bw,
            &BatchExt::none(),
            [JobSpec::from(&job)],
            &mut FixedOrder,
            Trace::Off,
        );
        for (d, usage) in scratch.dim_usages().enumerate() {
            let intervals = &traced.per_dim_busy[d];
            let busy: Time = intervals.iter().map(|(s, e)| e - s).sum();
            assert_eq!(usage.busy_ps, busy, "dim {d} busy");
            assert_eq!(usage.stages, intervals.len(), "dim {d} stages");
            assert_eq!(usage.first_start, intervals.first().map_or(0, |&(s, _)| s));
            assert_eq!(usage.last_end, intervals.last().map_or(0, |&(_, e)| e));
        }
        // And under Trace::Full the arena records both views at once.
        scratch.run_jobs(
            2,
            &bw,
            &BatchExt::none(),
            [JobSpec::from(&job)],
            &mut FixedOrder,
            Trace::Full,
        );
        assert_eq!(scratch.records(), traced.records.as_slice());
    }

    /// [`FixedOrder`] opts out of option construction; a scheduler using the
    /// default `needs_options` still sees the full option list.
    #[test]
    fn needs_options_default_preserves_option_driven_schedulers() {
        struct LastFirst;
        impl ChunkScheduler for LastFirst {
            fn choose(&mut self, _c: usize, _n: Time, options: &[StageOption]) -> usize {
                options.len() - 1
            }
        }
        assert!(!FixedOrder.needs_options());
        assert!(LastFirst.needs_options());
        let bw = [10.0, 10.0];
        let span = span2();
        let res = run_collective(2, &bw, Collective::ReduceScatter, 2e9, &span, 1, &mut LastFirst);
        // LastFirst visits dim 1 before dim 0.
        let seq: Vec<usize> = res.records.iter().map(|r| r.dim).collect();
        assert_eq!(seq, vec![1, 0]);
    }
}
