//! Minimal offline stand-in for the `rayon` crate.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! data-parallel subset LIBRA uses — `par_iter()` / `into_par_iter()`
//! followed by `map(..).collect()` or `for_each(..)` — on top of
//! `std::thread::scope`. Work is distributed dynamically through an atomic
//! cursor (good load balance when per-item cost varies, as it does for
//! interior-point solves), and results are returned **in input order**
//! regardless of completion order, matching rayon's `collect` semantics.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (same env var as rayon) or
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items` on a scoped thread pool, returning results in
/// input order.
fn run_pool<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot is claimed by exactly one worker via the atomic cursor; the
    // per-slot mutex only exists to hand the item across threads safely.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let r = f(item);
                out.lock().unwrap().push((i, r));
            });
        }
    });
    let mut pairs = out.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; evaluation is deferred until `collect`/`for_each`.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_pool(self.items, f);
    }

    /// Collects the items (identity map), preserving order.
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_par(run_pool(self.items, |t| t))
    }
}

/// A parallel map pipeline stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromParIter<R>>(self) -> C {
        C::from_par(run_pool(self.items, self.f))
    }

    /// Executes the map in parallel, discarding results.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        run_pool(self.items, |t| g((self.f)(t)));
    }
}

/// Collection targets for [`ParIter::collect`] / [`ParMap::collect`].
pub trait FromParIter<T> {
    /// Builds the collection from in-order results.
    fn from_par(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParIter<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// By-value conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// By-reference conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send;

    /// Borrows into a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_items() {
        let input: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[9], 1);
        assert_eq!(out[10], 2);
    }

    #[test]
    fn collects_results_short_circuit_style() {
        let ok: Result<Vec<u32>, String> =
            vec![1u32, 2, 3].into_par_iter().map(Ok::<u32, String>).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<u32>, String> = vec![1u32, 2, 3]
            .into_par_iter()
            .map(|x| if x == 2 { Err("boom".to_string()) } else { Ok(x) })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let ids: Vec<std::thread::ThreadId> = (0..128)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let uniq: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(uniq.len() > 1, "expected work on >1 thread");
    }
}
