//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this shim
//! provides the small `rand` surface LIBRA actually uses — a seedable
//! deterministic generator ([`rngs::StdRng`]) and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]) — with the same paths and signatures. The
//! generator is SplitMix64-seeded xoshiro256**, which is more than adequate
//! for tie-breaking and test-case generation (it is *not* the cryptographic
//! ChaCha generator the real `StdRng` wraps).

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
        pub fn gen_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn gen_index(&mut self, len: usize) -> usize {
            assert!(len > 0, "gen_index on empty range");
            // Multiply-shift bounded sampling (Lemire); the slight modulo
            // bias of the naive approach is irrelevant here, but this is
            // just as cheap and exact for power-of-two lengths.
            (((self.next_u64() as u128) * (len as u128)) >> 64) as usize
        }

        /// Uniform `u64` in `[lo, hi)`.
        ///
        /// # Panics
        /// Panics if `lo >= hi`.
        pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range {lo}..{hi}");
            let span = hi - lo;
            lo + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.gen_f64()
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::rngs::StdRng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_index(i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let u = r.gen_range_u64(3, 9);
            assert!((3..9).contains(&u));
            let i = r.gen_index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
