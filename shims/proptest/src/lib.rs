//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of proptest's API that LIBRA's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, numeric-range and
//! tuple strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! [`bool::ANY`], [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * **no shrinking** — a failing case reports its case index and the
//!   deterministic per-test seed instead of a minimized input;
//! * **deterministic runs** — the RNG is seeded from the test's module
//!   path, so failures reproduce exactly across runs and machines.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// The `prop::` path used for `prop::collection::vec`, `prop::bool::ANY`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (mirrors proptest's constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while still
        // exercising the input space (runs are deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test path.
#[doc(hidden)]
pub fn test_rng(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (the proptest `Strategy` trait, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (backs [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.gen_index(self.options.len());
        self.options[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range_f64(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Treated as half-open; the boundary point has measure zero anyway.
        rng.gen_range_f64(*self.start(), *self.end())
    }
}

macro_rules! unsigned_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}

unsigned_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range_u64(self.lo as u64, self.hi as u64 + 1) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Either boolean, uniformly.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `config.cases` times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_rng(test_path);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {test_path} failed at case {case}/{}: {e}",
                        config.cases
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            let msg = format!($($fmt)*);
            $crate::prop_assert!(
                false,
                "{msg}\nassertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            );
        }
    }};
}

/// `assert_ne!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($option),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(0.0f64..1.0, 3..=5);
        let mut r1 = crate::test_rng("a");
        let mut r2 = crate::test_rng("a");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 1u64..=9, f in 0.5f64..2.0, b in prop::bool::ANY) {
            prop_assert!((1..=9).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert_ne!(b, !b);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..3, 2u64..8), 1..=4).prop_map(|p| p.len()),
        ) {
            prop_assert!((1..=4).contains(&v));
        }

        #[test]
        fn oneof_picks_members(x in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x), "got {x}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
