//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of criterion's API LIBRA's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is
//! plain wall-clock sampling (warmup + `sample_size` samples, min/mean/max
//! reported); there is no statistical regression analysis or HTML output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: a few warmup calls, then `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2.min(self.sample_size) {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 2 warmup + 3 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter("p"), &21u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(7)));
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
