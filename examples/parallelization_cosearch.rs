//! Co-optimize the parallelization strategy *and* the network (the paper's
//! §VI-E study): each HP-(TP, DP) split of MSFT-1T becomes one named
//! workload in a single `Session` sweep — the engine designs the best
//! network for every strategy in one parallel fan-out, and the ranking
//! picks the joint winner.
//!
//! ```bash
//! cargo run --release --example parallelization_cosearch
//! ```

use libra::core::cost::CostModel;
use libra::core::network::NetworkShape;
use libra::core::opt::Objective;
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::workloads::compute::ComputeModel;
use libra::workloads::transformer::TransformerConfig;
use libra::{FnWorkload, RankBy, Session, SweepGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    let cm = CostModel::default();
    let global_batch = 512u64;

    // One sweep workload per candidate TP degree; the closure rebuilds
    // the split on whatever shape the grid hands it.
    let strategies = [8u64, 16, 32, 64, 128, 256];
    let workloads: Vec<FnWorkload> = strategies
        .iter()
        .map(|&tp| {
            FnWorkload::new(format!("HP-({tp},{})", shape.npus() / tp), move |s: &NetworkShape| {
                let dp = s.npus() / tp;
                let w = TransformerConfig::msft_1t()
                    .with_tp(tp)
                    .with_batch((global_batch / dp).max(1))
                    .build(s, &ComputeModel::default())?;
                let comm = libra::core::comm::CommModel::default();
                Ok(vec![(1.0, estimate(&w, TrainingLoop::NoOverlap, &comm))])
            })
        })
        .collect();

    let grid = SweepGrid::new()
        .with_shape(shape.clone())
        .with_budgets([total])
        .with_objectives([Objective::Perf]);
    let report = Session::new(&cm).run(&grid, &workloads, &[]).sweep;
    assert!(report.errors.is_empty(), "every strategy must map: {:?}", report.errors);

    println!("MSFT-1T on {shape} @ {total:.0} GB/s per NPU, global batch {global_batch}");
    println!("{:<16} {:>12} {:>30}", "strategy", "t (s/iter)", "optimized bw (GB/s)");
    for r in &report.results {
        println!(
            "{:<16} {:>12.3} {:>30}",
            r.workload,
            r.design.weighted_time,
            format!("{:?}", r.design.bw.iter().map(|b| b.round()).collect::<Vec<_>>())
        );
    }
    let best = report.ranked(RankBy::WeightedTime)[0];
    println!();
    println!("joint optimum: {} at {:.3} s/iter", best.workload, best.design.weighted_time);
    Ok(())
}
