//! Co-optimize the parallelization strategy *and* the network (the paper's
//! §VI-E study): for each HP-(TP, DP) split of MSFT-1T, design the best
//! network, and pick the joint winner.
//!
//! ```bash
//! cargo run --release --example parallelization_cosearch
//! ```

use libra::core::cost::CostModel;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::workloads::compute::ComputeModel;
use libra::workloads::transformer::TransformerConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    let cm = CostModel::default();
    let compute = ComputeModel::default();
    let comm = libra::core::comm::CommModel::default();
    let global_batch = 512u64;

    println!("MSFT-1T on {shape} @ {total:.0} GB/s per NPU, global batch {global_batch}");
    println!("{:<16} {:>12} {:>30}", "strategy", "t (s/iter)", "optimized bw (GB/s)");
    let mut best: Option<(u64, f64)> = None;
    for tp in [8u64, 16, 32, 64, 128, 256] {
        let dp = shape.npus() / tp;
        let w = TransformerConfig::msft_1t()
            .with_tp(tp)
            .with_batch((global_batch / dp).max(1))
            .build(&shape, &compute)?;
        let expr = estimate(&w, TrainingLoop::NoOverlap, &comm);
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })?;
        println!(
            "HP-({tp:>3},{dp:>4}) {:>12.3} {:>30}",
            d.weighted_time,
            format!("{:?}", d.bw.iter().map(|b| b.round()).collect::<Vec<_>>())
        );
        if best.is_none_or(|(_, t)| d.weighted_time < t) {
            best = Some((tp, d.weighted_time));
        }
    }
    let (tp, t) = best.expect("at least one strategy evaluated");
    println!();
    println!("joint optimum: HP-({tp}, {}) at {t:.3} s/iter", shape.npus() / tp);
    Ok(())
}
