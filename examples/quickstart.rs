//! Quickstart: size a multi-dimensional training fabric for GPT-3.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Walks the full LIBRA pipeline: describe a network, generate a workload,
//! estimate training time as a function of bandwidth, optimize the
//! bandwidth split, and compare against the EqualBW baseline — both
//! analytically and on the event-driven simulator — then replays the same
//! study through the scenario-first `Session` front door.

use libra::core::comm::CommModel;
use libra::core::cost::CostModel;
use libra::core::network::NetworkShape;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::sim::training::{simulate_training, TrainingSimConfig};
use libra::workloads::zoo::{workload_for, PaperModel};
use libra::Scenario;
use libra_bench::{default_registry, scenario_workloads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The fabric: the paper's representative 4D-4K topology —
    //    4-chiplet packages, 8-package fully-connected boards, 4-board
    //    nodes, and a 32-way scale-out switch (4,096 NPUs).
    let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse()?;
    println!("network : {shape} ({} NPUs)", shape.npus());

    // 2. The workload: GPT-3 with Megatron TP-16 + ZeRO-2 data parallelism.
    let workload = workload_for(PaperModel::Gpt3, &shape)?;
    println!(
        "workload: {} ({} layers, {:.1} GB communicated per iteration)",
        workload.name,
        workload.layers.len(),
        workload.total_comm_bytes() / 1e9
    );

    // 3. Training time as a function of the per-dimension bandwidths.
    let expr = estimate(&workload, TrainingLoop::NoOverlap, &CommModel::default());

    // 4. Optimize a 300 GB/s-per-NPU bandwidth budget.
    let cost_model = CostModel::default();
    let design = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr.clone())],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(300.0)],
        cost_model: &cost_model,
    })?;
    let baseline =
        opt::evaluate(&shape, &[(1.0, expr)], &opt::equal_bw(shape.ndims(), 300.0), &cost_model);

    println!();
    println!(
        "EqualBW  : bw = {:?} GB/s",
        baseline.bw.iter().map(|b| b.round()).collect::<Vec<_>>()
    );
    println!("           {:.3} s/iter, ${:.2}M", baseline.weighted_time, baseline.cost / 1e6);
    println!("PerfOptBW: bw = {:?} GB/s", design.bw.iter().map(|b| b.round()).collect::<Vec<_>>());
    println!("           {:.3} s/iter, ${:.2}M", design.weighted_time, design.cost / 1e6);
    println!("           speedup {:.2}x over EqualBW", design.speedup_over(&baseline));

    // 5. Validate the analytical estimate on the chunk-level simulator.
    let sim =
        simulate_training(&workload, shape.ndims(), &design.bw, &TrainingSimConfig::default());
    println!();
    println!(
        "simulator check: {:.3} s/iter ({:+.1}% vs analytical), network utilization {:.0}%",
        sim.makespan,
        (sim.makespan / design.weighted_time - 1.0) * 100.0,
        sim.average_utilization() * 100.0
    );

    // 6. The same study as one declarative scenario: workloads and
    //    backends by name, executed by the N-way Session front door with
    //    cross-validation built in. Scenarios serialize to JSON, so this
    //    exact description can be saved and replayed by the `libra` CLI.
    let scenario = Scenario::builder("quickstart")
        .with_shape(shape.clone())
        .with_budgets([300.0])
        .with_objectives([Objective::Perf])
        .with_workload("GPT-3")
        .with_backends(["analytical", "event-sim"])
        .build()?;
    let registry = default_registry();
    let session = scenario.session(&cost_model);
    let report = session.run_scenario(&scenario, &scenario_workloads(&scenario)?, &registry)?;
    println!();
    println!("scenario front door ({} grid point):", report.sweep.results.len());
    for line in report.divergence.summary().lines() {
        println!("  {line}");
    }
    assert!(report.divergence.within_tolerance());
    Ok(())
}
