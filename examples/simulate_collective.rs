//! Watch a multi-rail All-Reduce execute chunk by chunk, and cross-check
//! the analytical cost model against the event simulator through the
//! pluggable [`EvalBackend`] interface (the paper's Fig. 9 intuition,
//! interactive form).
//!
//! ```bash
//! cargo run --release --example simulate_collective
//! ```

use libra::core::comm::{traffic_per_dim, Collective, GroupSpan};
use libra::core::workload::CommOp;
use libra::sim::collective::{run_collective, FixedOrder};
use libra::sim::stats::{average_utilization, render_gantt};
use libra::themis::ThemisScheduler;
use libra::{default_registry, BackendConfig, CommPlan, EvalBackend, EventSimBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8 GB All-Reduce over a 4×4×4 group, 8 chunks.
    let span = GroupSpan::new(vec![(0, 4), (1, 4), (2, 4)]);
    let bytes = 8e9;
    let chunks = 8;

    println!("All-Reduce of {:.0} GB over a 4x4x4 group, {chunks} chunks\n", bytes / 1e9);
    let traffic = traffic_per_dim(Collective::AllReduce, bytes, &span);
    for &(d, t) in &traffic {
        println!("  dim {d}: {:.2} GB of traffic", t / 1e9);
    }
    println!();

    let total = 300.0;
    let tsum: f64 = traffic.iter().map(|&(_, t)| t).sum();
    let proportional: Vec<f64> = traffic.iter().map(|&(_, t)| total * t / tsum).collect();
    let equal = vec![total / 3.0; 3];

    // Both backends price the SAME plan — any disagreement beyond the
    // pipeline-bubble bound is a modeling bug, which is exactly what
    // cross-validated sweeps guard against at scale.
    let plan = CommPlan::serial([CommOp::new(Collective::AllReduce, bytes, span.clone())]);
    // Backends by registry name — exactly how scenario files resolve them.
    let registry = default_registry();
    let config = BackendConfig { chunks };
    let analytical = registry.build("analytical", &config)?;
    let event_sim = registry.build("event-sim", &config)?;

    for (name, bw) in [("EqualBW", equal.clone()), ("traffic-proportional", proportional)] {
        let ana = analytical.eval_plan(3, &bw, &plan)?;
        let sim = event_sim.eval_plan(3, &bw, &plan)?;
        let res =
            run_collective(3, &bw, Collective::AllReduce, bytes, &span, chunks, &mut FixedOrder);
        println!(
            "{name}: bw = [{:.0}, {:.0}, {:.0}] → {} {:.4} s vs {} {:.4} s \
             (+{:.1}% pipeline bubble), utilization {:.0}%",
            bw[0],
            bw[1],
            bw[2],
            analytical.name(),
            ana,
            event_sim.name(),
            sim,
            100.0 * (sim - ana) / ana,
            average_utilization(&res.per_dim_busy) * 100.0
        );
        println!("{}", render_gantt(&res.records, 3, 68));
    }

    // More chunks pipeline better: the event-driven time converges onto the
    // analytical bound within the backend's documented agreement bound.
    println!("chunk-count convergence onto the analytical bound (EqualBW):");
    let ana = analytical.eval_plan(3, &equal, &plan)?;
    for c in [1, 4, 16, 64, 256] {
        let backend = EventSimBackend::new(c);
        let sim = backend.eval_plan(3, &equal, &plan)?;
        println!(
            "  {c:>4} chunks: {sim:.4} s  (analytical {ana:.4} s, gap {:+.2}%, bound {:.2}%)",
            100.0 * (sim - ana) / ana,
            100.0 * backend.agreement_bound(3),
        );
    }
    println!();

    // A Themis-style runtime scheduler can recover part of EqualBW's loss.
    let fixed = run_collective(3, &equal, Collective::AllReduce, bytes, &span, 64, &mut FixedOrder);
    let themis = run_collective(
        3,
        &equal,
        Collective::AllReduce,
        bytes,
        &span,
        64,
        &mut ThemisScheduler::new(),
    );
    println!(
        "EqualBW with 64 chunks: canonical order {:.4} s vs Themis {:.4} s ({:.2}x)",
        fixed.makespan() as f64 / 1e12,
        themis.makespan() as f64 / 1e12,
        fixed.makespan() as f64 / themis.makespan() as f64
    );
    Ok(())
}
