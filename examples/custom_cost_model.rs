//! Plug in your own dollar-cost model (the paper's §VI-C flexibility
//! argument): vendors and technologies change, so Table I is an input.
//! Each cost model gets its own `Session` — the scenario front door's
//! sweep result already carries the EqualBW baseline per grid point.
//!
//! ```bash
//! cargo run --release --example custom_cost_model
//! ```

use libra::core::cost::{CostModel, ScopeCost};
use libra::core::opt::Objective;
use libra::core::presets;
use libra::{Session, SweepGrid};
use libra_bench::sweep_workload;
use libra_workloads::zoo::PaperModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let total = 500.0;

    // A hypothetical future where photonic pod links get 3× cheaper and
    // on-package wiring is nearly free.
    let photonic_future = CostModel {
        chiplet: ScopeCost { link: 0.5, switch: None, nic: None },
        package: ScopeCost { link: 2.0, switch: Some(8.0), nic: None },
        node: ScopeCost { link: 3.0, switch: Some(10.0), nic: None },
        pod: ScopeCost { link: 2.6, switch: Some(6.0), nic: Some(10.5) },
    };

    let grid = SweepGrid::new()
        .with_shape(shape.clone())
        .with_budgets([total])
        .with_objectives([Objective::PerfPerCost]);
    for (name, cm) in
        [("Table I (default)", CostModel::default()), ("photonic future", photonic_future)]
    {
        let report = Session::new(&cm).run(&grid, &[sweep_workload(PaperModel::Gpt3)], &[]).sweep;
        let r = report.results.first().ok_or("grid point failed")?;
        println!("{name}:");
        println!(
            "  PerfPerCostOptBW bw = {:?} GB/s",
            r.design.bw.iter().map(|b| b.round()).collect::<Vec<_>>()
        );
        println!(
            "  {:.3} s/iter at ${:.2}M  ({:.2}x perf-per-cost vs EqualBW)\n",
            r.design.weighted_time,
            r.design.cost / 1e6,
            r.ppc_gain()
        );
    }
    Ok(())
}
