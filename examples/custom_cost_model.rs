//! Plug in your own dollar-cost model (the paper's §VI-C flexibility
//! argument): vendors and technologies change, so Table I is an input.
//!
//! ```bash
//! cargo run --release --example custom_cost_model
//! ```

use libra::core::cost::{CostModel, ScopeCost};
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::workloads::zoo::{workload_for, PaperModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Gpt3, &shape)?;
    let expr = estimate(&w, TrainingLoop::NoOverlap, &libra::core::comm::CommModel::default());
    let total = 500.0;

    // A hypothetical future where photonic pod links get 3× cheaper and
    // on-package wiring is nearly free.
    let photonic_future = CostModel {
        chiplet: ScopeCost { link: 0.5, switch: None, nic: None },
        package: ScopeCost { link: 2.0, switch: Some(8.0), nic: None },
        node: ScopeCost { link: 3.0, switch: Some(10.0), nic: None },
        pod: ScopeCost { link: 2.6, switch: Some(6.0), nic: Some(10.5) },
    };

    for (name, cm) in
        [("Table I (default)", CostModel::default()), ("photonic future", photonic_future)]
    {
        let targets = vec![(1.0, expr.clone())];
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: targets.clone(),
            objective: Objective::PerfPerCost,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })?;
        let equal = opt::evaluate(&shape, &targets, &opt::equal_bw(4, total), &cm);
        println!("{name}:");
        println!(
            "  PerfPerCostOptBW bw = {:?} GB/s",
            d.bw.iter().map(|b| b.round()).collect::<Vec<_>>()
        );
        println!(
            "  {:.3} s/iter at ${:.2}M  ({:.2}x perf-per-cost vs EqualBW)\n",
            d.weighted_time,
            d.cost / 1e6,
            d.ppc_gain_over(&equal)
        );
    }
    Ok(())
}
