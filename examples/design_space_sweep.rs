//! Design-space exploration with the parallel sweep engine: candidate
//! topologies × workloads × bandwidth budgets × objectives evaluated
//! concurrently, then ranked (the paper's Fig. 13/14 loop as a subsystem)
//! — with every grid point **three-way cross-validated**: the analytical
//! cost model, the event-driven simulator, and the network-layer α-β
//! simulator price each optimized design in the same rayon fan-out, and
//! the sweep reports every pairwise divergence.
//!
//! ```bash
//! cargo run --release --example design_space_sweep
//! ```

use std::time::Instant;

use libra::core::cost::CostModel;
use libra::core::opt::Objective;
use libra::core::presets;
use libra::{Analytical, CrossValidation3, EventSimBackend, LinkParams, NetSimBackend};
use libra_bench::sweep::{RankBy, SweepEngine, SweepGrid};
use libra_bench::{sweep_workloads_with_link, BW_SWEEP};
use libra_workloads::zoo::PaperModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = SweepGrid::new()
        .with_shapes([presets::topo_4d_4k(), presets::topo_3d_4k()])
        .with_budgets(BW_SWEEP)
        .with_objectives([Objective::Perf, Objective::PerfPerCost]);
    // Each plan carries its shape's per-dimension topology kinds plus
    // NVLink-class link latency (20 ns per hop, 10 ns switch traversal) —
    // the network layer NetSim prices and the closed form ignores.
    let link = LinkParams::latency(20_000.0).with_switch_ps(10_000.0);
    let workloads = sweep_workloads_with_link(&[PaperModel::Msft1T, PaperModel::Gpt3], link);
    let n_points = grid.len(workloads.len());

    let cm = CostModel::default();
    let engine = SweepEngine::new(&cm);
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();
    let net_sim = NetSimBackend::default();
    // Tolerance from the backends' documented β-only agreement bound for
    // the widest fabric in the grid (4 dims at 64 chunks → 12.5 %), plus a
    // small allowance for the α terms NetSim adds on these GB-scale plans.
    let max_ndims = grid.shapes().iter().map(|s| s.ndims()).max().unwrap_or(1);
    let cv = CrossValidation3::new(&analytical, &event_sim, &net_sim)
        .with_tolerance(event_sim.agreement_bound(max_ndims) + 0.02);
    let t0 = Instant::now();
    let validated = engine.run_cross_validated3(&grid, &workloads, &cv);
    let elapsed = t0.elapsed();
    let report = &validated.sweep;

    println!(
        "swept {n_points} design points ({} shapes x {} workloads x {} budgets x {} objectives) \
         in {:.2?} on {} threads",
        grid.shapes().len(),
        workloads.len(),
        grid.budgets().len(),
        grid.objectives().len(),
        elapsed,
        rayon::current_num_threads(),
    );
    let c = report.cache;
    println!(
        "cache: {} expr builds ({} hits), {} solves ({} hits), {} errors",
        c.expr_misses,
        c.expr_hits,
        c.design_misses,
        c.design_hits,
        report.errors.len()
    );

    // The model-validation half: did the closed form, the chunk-level
    // event timelines, and the network-layer α-β timelines agree at every
    // optimized design point, pairwise?
    let d3 = &validated.divergence;
    println!("three-way cross-validation:");
    for pair in &d3.pairs {
        println!("  {}", pair.summary());
        if let Some(w) = pair.worst(1).first() {
            println!(
                "    worst: {} × {} @ {:.0} GB/s ({:?}): {:.4}s vs {:.4}s (rel err {:.2}%)",
                w.shape,
                w.workload,
                w.point.budget,
                w.point.objective,
                w.baseline_secs,
                w.reference_secs,
                100.0 * w.rel_error
            );
        }
    }
    assert!(d3.within_tolerance(), "a backend pair diverged beyond tolerance");
    println!();

    println!("top designs by speedup over EqualBW:");
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>9} {:>9}",
        "shape", "workload", "GB/s", "objective", "t(s)", "speedup", "ppc gain"
    );
    for r in report.ranked(RankBy::Speedup).iter().take(8) {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>8.2}x {:>8.2}x",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.speedup(),
            r.ppc_gain()
        );
    }

    println!("\nperf-vs-cost Pareto front ({} designs):", report.pareto_front().len());
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>12}",
        "shape", "workload", "GB/s", "objective", "t(s)", "cost ($M)"
    );
    for r in report.pareto_front() {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>12.2}",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.design.cost / 1e6
        );
    }
    Ok(())
}
