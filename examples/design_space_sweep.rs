//! Design-space exploration through the scenario front door: the whole
//! problem — candidate topologies × workloads × bandwidth budgets ×
//! objectives, the α-β link parameters, and the three evaluation
//! backends — lives in a committed **scenario file**
//! (`scenarios/design_space_sweep.json`), and one `Session::run_scenario`
//! call evaluates the grid in parallel with every grid point three-way
//! cross-validated (analytical / event-sim / net-sim priced in the same
//! rayon fan-out, all pairwise divergences reported).
//!
//! The identical scenario file drives the `libra` CLI
//! (`cargo run --release -p libra-bench --bin libra -- crossval
//! scenarios/design_space_sweep.json`), so this example and the CLI are
//! bit-identical by construction — the CI golden pins it.
//!
//! ```bash
//! cargo run --release --example design_space_sweep
//! ```

use std::time::Instant;

use libra::core::cost::CostModel;
use libra::{RankBy, Scenario};
use libra_bench::{default_registry, scenario_workloads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/design_space_sweep.json");
    let scenario = Scenario::load(path)?;
    let workloads = scenario_workloads(&scenario)?;
    let registry = default_registry();
    let grid = scenario.grid();
    let n_points = grid.len(workloads.len());

    let cm = CostModel::default();
    let session = scenario.session(&cm);
    let t0 = Instant::now();
    let validated = session.run_scenario(&scenario, &workloads, &registry)?;
    let elapsed = t0.elapsed();
    let report = &validated.sweep;

    println!(
        "scenario {:?}: swept {n_points} design points ({} shapes x {} workloads x {} budgets \
         x {} objectives) in {:.2?} on {} threads",
        scenario.name,
        grid.shapes().len(),
        workloads.len(),
        grid.budgets().len(),
        grid.objectives().len(),
        elapsed,
        rayon::current_num_threads(),
    );
    let c = report.cache;
    println!(
        "cache: {} expr builds ({} hits), {} solves ({} hits, {} warm-seeded), {} errors",
        c.expr_misses,
        c.expr_hits,
        c.design_misses,
        c.design_hits,
        c.warm_seeded,
        report.errors.len()
    );

    // The model-validation half: did the closed form, the chunk-level
    // event timelines, and the network-layer α-β timelines agree at every
    // optimized design point, pairwise?
    let d = &validated.divergence;
    println!("{}-way cross-validation ({} pairs):", d.n_backends(), d.pairs.len());
    for pair in &d.pairs {
        println!("  {}", pair.summary());
        if let Some(w) = pair.worst(1).first() {
            println!(
                "    worst: {} × {} @ {:.0} GB/s ({:?}): {:.4}s vs {:.4}s (rel err {:.2}%)",
                w.shape,
                w.workload,
                w.point.budget,
                w.point.objective,
                w.baseline_secs,
                w.reference_secs,
                100.0 * w.rel_error
            );
        }
    }
    assert!(d.within_tolerance(), "a backend pair diverged beyond tolerance");
    println!();

    println!("top designs by speedup over EqualBW:");
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>9} {:>9}",
        "shape", "workload", "GB/s", "objective", "t(s)", "speedup", "ppc gain"
    );
    for r in report.ranked(RankBy::Speedup).iter().take(8) {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>8.2}x {:>8.2}x",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.speedup(),
            r.ppc_gain()
        );
    }

    println!("\nperf-vs-cost Pareto front ({} designs):", report.pareto_front().len());
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>12}",
        "shape", "workload", "GB/s", "objective", "t(s)", "cost ($M)"
    );
    for r in report.pareto_front() {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>12.2}",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.design.cost / 1e6
        );
    }
    Ok(())
}
