//! Design-space exploration: sweep the per-NPU bandwidth budget and both
//! optimization objectives for one model/topology pair (a single panel of
//! the paper's Fig. 13/14).
//!
//! ```bash
//! cargo run --release --example design_space_sweep
//! ```

use libra::core::cost::CostModel;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::workloads::zoo::{workload_for, PaperModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let model = PaperModel::Msft1T;
    let w = workload_for(model, &shape)?;
    let expr = estimate(&w, TrainingLoop::NoOverlap, &libra::core::comm::CommModel::default());
    let cm = CostModel::default();

    println!("{} on {shape}", model.name());
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "GB/s", "equal t(s)", "perf t(s)", "perf spdup", "ppc t(s)", "ppc gain"
    );
    for budget in (100..=1000).step_by(100) {
        let budget = budget as f64;
        let targets = vec![(1.0, expr.clone())];
        let equal = opt::evaluate(&shape, &targets, &opt::equal_bw(4, budget), &cm);
        let perf = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: targets.clone(),
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(budget)],
            cost_model: &cm,
        })?;
        let ppc = opt::optimize(&DesignRequest {
            shape: &shape,
            targets,
            objective: Objective::PerfPerCost,
            constraints: vec![Constraint::TotalBw(budget)],
            cost_model: &cm,
        })?;
        println!(
            "{budget:>8.0} {:>12.3} {:>10.3} {:>11.2}x {:>12.3} {:>11.2}x",
            equal.weighted_time,
            perf.weighted_time,
            perf.speedup_over(&equal),
            ppc.weighted_time,
            ppc.ppc_gain_over(&equal)
        );
    }
    Ok(())
}
