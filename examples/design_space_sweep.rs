//! Design-space exploration with the parallel sweep engine: candidate
//! topologies × workloads × bandwidth budgets × objectives evaluated
//! concurrently, then ranked (the paper's Fig. 13/14 loop as a subsystem).
//!
//! ```bash
//! cargo run --release --example design_space_sweep
//! ```

use std::time::Instant;

use libra::core::cost::CostModel;
use libra::core::opt::Objective;
use libra::core::presets;
use libra_bench::sweep::{RankBy, SweepEngine, SweepGrid};
use libra_bench::{sweep_workloads, BW_SWEEP};
use libra_workloads::zoo::PaperModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = SweepGrid::new()
        .with_shapes([presets::topo_4d_4k(), presets::topo_3d_4k()])
        .with_budgets(BW_SWEEP)
        .with_objectives([Objective::Perf, Objective::PerfPerCost]);
    let workloads = sweep_workloads(&[PaperModel::Msft1T, PaperModel::Gpt3]);
    let n_points = grid.len(workloads.len());

    let cm = CostModel::default();
    let engine = SweepEngine::new(&cm);
    let t0 = Instant::now();
    let report = engine.run(&grid, &workloads);
    let elapsed = t0.elapsed();

    println!(
        "swept {n_points} design points ({} shapes x {} workloads x {} budgets x {} objectives) \
         in {:.2?} on {} threads",
        grid.shapes().len(),
        workloads.len(),
        grid.budgets().len(),
        grid.objectives().len(),
        elapsed,
        rayon::current_num_threads(),
    );
    let c = report.cache;
    println!(
        "cache: {} expr builds ({} hits), {} solves ({} hits), {} errors\n",
        c.expr_misses,
        c.expr_hits,
        c.design_misses,
        c.design_hits,
        report.errors.len()
    );

    println!("top designs by speedup over EqualBW:");
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>9} {:>9}",
        "shape", "workload", "GB/s", "objective", "t(s)", "speedup", "ppc gain"
    );
    for r in report.ranked(RankBy::Speedup).iter().take(8) {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>8.2}x {:>8.2}x",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.speedup(),
            r.ppc_gain()
        );
    }

    println!("\nperf-vs-cost Pareto front ({} designs):", report.pareto_front().len());
    println!(
        "{:>28} {:<10} {:>6} {:<11} {:>9} {:>12}",
        "shape", "workload", "GB/s", "objective", "t(s)", "cost ($M)"
    );
    for r in report.pareto_front() {
        println!(
            "{:>28} {:<10} {:>6.0} {:<11} {:>9.3} {:>12.2}",
            r.shape.to_string(),
            r.workload,
            r.point.budget,
            format!("{:?}", r.point.objective),
            r.design.weighted_time,
            r.design.cost / 1e6
        );
    }
    Ok(())
}
