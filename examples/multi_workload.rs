//! Multi-workload (group) network design — the paper's §VI-B scenario:
//! one cluster that must train several different models well.
//!
//! ```bash
//! cargo run --release --example multi_workload
//! ```

use libra::core::cost::CostModel;
use libra::core::expr::BwExpr;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::workloads::zoo::{workload_for, PaperModel};
use libra::{Session, SweepGrid};
use libra_bench::sweep_workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    let cm = CostModel::default();
    let comm = libra::core::comm::CommModel::default();
    let models = [PaperModel::TuringNlg, PaperModel::Gpt3, PaperModel::Msft1T];

    // Build each model's time expression and its EqualBW reference time.
    let mut exprs: Vec<BwExpr> = Vec::new();
    let mut eq_times: Vec<f64> = Vec::new();
    let equal = opt::equal_bw(shape.ndims(), total);
    for m in models {
        let w = workload_for(m, &shape)?;
        let e = estimate(&w, TrainingLoop::NoOverlap, &comm);
        eq_times.push(e.eval(&equal));
        exprs.push(e);
    }

    // Importance weights: normalize by the EqualBW time, so each workload
    // contributes its relative slowdown rather than raw seconds.
    let targets: Vec<(f64, BwExpr)> =
        exprs.iter().zip(&eq_times).map(|(e, t)| (1.0 / t, e.clone())).collect();
    let group = opt::optimize(&DesignRequest {
        shape: &shape,
        targets,
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })?;

    println!("group-optimized 4D-4K @ {total:.0} GB/s per NPU");
    println!("bw = {:?} GB/s\n", group.bw.iter().map(|b| b.round()).collect::<Vec<_>>());

    // For contrast, let the Session front door design a *dedicated*
    // network per model on the same budget (one plain sweep: 1 shape ×
    // 3 workloads × 1 budget, no backends to price).
    let grid = SweepGrid::new()
        .with_shape(shape.clone())
        .with_budgets([total])
        .with_objectives([Objective::Perf]);
    let per_model = Session::new(&cm).run(&grid, &sweep_workloads(&models), &[]).sweep;
    assert!(per_model.errors.is_empty());

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "workload", "EqualBW (s)", "group (s)", "dedicated(s)", "speedup"
    );
    for (((m, e), eq_t), solo) in models.iter().zip(&exprs).zip(&eq_times).zip(&per_model.results) {
        let t = e.eval(&group.bw);
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>9.2}x",
            m.name(),
            eq_t,
            t,
            solo.design.weighted_time,
            eq_t / t
        );
    }
    Ok(())
}
